//! SIGMOD-Record-style workload data (§7, second data set).
//!
//! The paper scales the public SIGMOD Record XML by ×100 and rebuilds
//! it in three designs. We generate an equivalent entity graph —
//! issues (volume/number/date), articles (title, pages, authors),
//! editors, and topics — and render:
//!
//! * **MCT** ([`SigmodData::build_mct`]): the two colored hierarchies
//!   of §7 — `date`: date–issue–articles and `editor`:
//!   editor–topic–articles. Articles appearing in both carry two
//!   colors.
//! * **Shallow** ([`SigmodData::build_shallow`]): the paper's three
//!   single-color trees — `articles`, `date--issue`, `editor--topic` —
//!   with IDREF attributes on articles.
//! * **Deep** ([`SigmodData::build_deep`]): nested
//!   date–issue–articles with the editor/topic information replicated
//!   inside every article.

use mct_core::{ColorId, McNodeId, MctDatabase};
use crate::rng::XorShiftRng;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SigmodConfig {
    /// Scale factor; 1.0 ≈ 2000 articles (≈ 18 K elements).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SigmodConfig {
    fn default() -> Self {
        SigmodConfig {
            scale: 1.0,
            seed: 0x51600D_u64,
        }
    }
}

/// One issue of the Record.
#[derive(Clone, Debug)]
pub struct Issue {
    /// Volume number.
    pub volume: u32,
    /// Issue number within the volume.
    pub number: u32,
    /// Index into dates.
    pub date: usize,
}

/// One article.
#[derive(Clone, Debug)]
pub struct Article {
    /// Title.
    pub title: String,
    /// First page.
    pub init_page: u32,
    /// Last page.
    pub end_page: u32,
    /// Author names.
    pub authors: Vec<String>,
    /// Index into issues.
    pub issue: usize,
    /// Index into topics.
    pub topic: usize,
}

/// One topic area with its editor.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Topic name.
    pub name: String,
    /// Scope note (replicated per article in the deep design).
    pub scope: String,
    /// Index into editors.
    pub editor: usize,
}

/// The generated entity graph.
#[derive(Clone, Debug)]
pub struct SigmodData {
    /// Publication dates (one per issue-quarter).
    pub dates: Vec<String>,
    /// Issues.
    pub issues: Vec<Issue>,
    /// Articles.
    pub articles: Vec<Article>,
    /// Editors (names).
    pub editors: Vec<String>,
    /// Topics.
    pub topics: Vec<Topic>,
}

const TOPICS: &[&str] = &[
    "Query Processing", "Data Models", "Transactions", "Information Retrieval",
    "Distributed Systems", "Storage", "Benchmarks", "Data Mining",
];
const WORDS: &[&str] = &[
    "Efficient", "Scalable", "Adaptive", "Holistic", "Incremental", "Robust", "Parallel",
    "Declarative", "Streaming", "Approximate",
];
const AREAS: &[&str] = &[
    "Join Processing", "XML Storage", "Index Structures", "View Maintenance", "Query Optimization",
    "Schema Design", "Data Integration", "Concurrency Control",
];

impl SigmodData {
    /// Generate the entity graph.
    pub fn generate(cfg: &SigmodConfig) -> SigmodData {
        let mut rng = XorShiftRng::seed_from_u64(cfg.seed);
        let n_articles = ((2000.0 * cfg.scale) as usize).max(40);
        let n_issues = (n_articles / 25).max(4);
        let n_editors = 10usize.min(n_issues);
        let dates: Vec<String> = (0..n_issues)
            .map(|i| format!("{}-{:02}", 1975 + i / 4, 3 * (i % 4) + 1))
            .collect();
        let issues: Vec<Issue> = (0..n_issues)
            .map(|i| Issue {
                volume: (i / 4 + 1) as u32,
                number: (i % 4 + 1) as u32,
                date: i,
            })
            .collect();
        let editors: Vec<String> = (0..n_editors).map(|i| format!("Editor {i}")).collect();
        let topics: Vec<Topic> = TOPICS
            .iter()
            .enumerate()
            .map(|(i, t)| Topic {
                name: t.to_string(),
                scope: format!(
                    "Covers {} across systems and theory, including survey and \
                     experience papers; coordinated by the area editor ({}).",
                    t.to_lowercase(),
                    i
                ),
                editor: i % n_editors,
            })
            .collect();
        let articles: Vec<Article> = (0..n_articles)
            .map(|i| {
                let init = rng.gen_range(1u32..200);
                let n_auth = rng.gen_range(1..=3);
                Article {
                    title: format!(
                        "{} {} for {}",
                        WORDS[rng.gen_range(0..WORDS.len())],
                        AREAS[rng.gen_range(0..AREAS.len())],
                        format_args!("Workload {i}"),
                    ),
                    init_page: init,
                    end_page: init + rng.gen_range(5u32..25),
                    authors: (0..n_auth).map(|a| format!("Author {}-{a}", i % 97)).collect(),
                    issue: rng.gen_range(0..n_issues),
                    topic: rng.gen_range(0..topics.len()),
                }
            })
            .collect();
        SigmodData {
            dates,
            issues,
            articles,
            editors,
            topics,
        }
    }

    fn add_article_leaves(
        db: &mut MctDatabase,
        article: McNodeId,
        a: &Article,
        colors: &[ColorId],
    ) {
        for (name, content) in [
            ("title", a.title.clone()),
            ("initPage", a.init_page.to_string()),
            ("endPage", a.end_page.to_string()),
        ] {
            let n = db.new_element(name, colors[0]);
            db.set_content(n, &content);
            db.append_child(article, n, colors[0]);
            for &c in &colors[1..] {
                db.add_node_color(n, c);
                db.append_child(article, n, c);
            }
        }
        for author in &a.authors {
            let n = db.new_element("author", colors[0]);
            db.set_content(n, author);
            db.append_child(article, n, colors[0]);
            for &c in &colors[1..] {
                db.add_node_color(n, c);
                db.append_child(article, n, c);
            }
        }
    }

    /// Render as a two-hierarchy MCT database.
    pub fn build_mct(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let date = db.add_color("date");
        let editor = db.add_color("editor");
        let date_nodes: Vec<McNodeId> = self
            .dates
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let n = db.new_element("date", date);
                db.set_attr(n, "id", &format!("d{i}"));
                db.set_content(n, d);
                db.append_child(McNodeId::DOCUMENT, n, date);
                n
            })
            .collect();
        let issue_nodes: Vec<McNodeId> = self
            .issues
            .iter()
            .enumerate()
            .map(|(i, is)| {
                let n = db.new_element("issue", date);
                db.set_attr(n, "id", &format!("is{i}"));
                db.set_attr(n, "volume", &is.volume.to_string());
                db.set_attr(n, "number", &is.number.to_string());
                db.append_child(date_nodes[is.date], n, date);
                n
            })
            .collect();
        let editor_nodes: Vec<McNodeId> = self
            .editors
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let n = db.new_element("editor", editor);
                db.set_attr(n, "id", &format!("e{i}"));
                db.set_content(n, e);
                db.append_child(McNodeId::DOCUMENT, n, editor);
                n
            })
            .collect();
        let topic_nodes: Vec<McNodeId> = self
            .topics
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let n = db.new_element("topic", editor);
                db.set_attr(n, "id", &format!("t{i}"));
                db.set_content(n, &t.name);
                db.append_child(editor_nodes[t.editor], n, editor);
                let sc = db.new_element("scope", editor);
                db.set_content(sc, &t.scope);
                db.append_child(n, sc, editor);
                n
            })
            .collect();
        for (i, a) in self.articles.iter().enumerate() {
            let n = db.new_element("article", date);
            db.set_attr(n, "id", &format!("ar{i}"));
            db.append_child(issue_nodes[a.issue], n, date);
            db.add_node_color(n, editor);
            db.append_child(topic_nodes[a.topic], n, editor);
            Self::add_article_leaves(&mut db, n, a, &[date, editor]);
        }
        db
    }

    /// Render as the paper's three shallow trees with IDREFs.
    pub fn build_shallow(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        // Tree 1: articles.
        let sec_articles = db.new_element("articles", c);
        db.append_child(McNodeId::DOCUMENT, sec_articles, c);
        // Tree 2: date--issue.
        let sec_dates = db.new_element("calendar", c);
        db.append_child(McNodeId::DOCUMENT, sec_dates, c);
        // Tree 3: editor--topic.
        let sec_editors = db.new_element("editorial", c);
        db.append_child(McNodeId::DOCUMENT, sec_editors, c);

        let date_nodes: Vec<McNodeId> = self
            .dates
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let n = db.new_element("date", c);
                db.set_attr(n, "id", &format!("d{i}"));
                db.set_content(n, d);
                db.append_child(sec_dates, n, c);
                n
            })
            .collect();
        for (i, is) in self.issues.iter().enumerate() {
            let n = db.new_element("issue", c);
            db.set_attr(n, "id", &format!("is{i}"));
            db.set_attr(n, "volume", &is.volume.to_string());
            db.set_attr(n, "number", &is.number.to_string());
            db.append_child(date_nodes[is.date], n, c);
        }
        let editor_nodes: Vec<McNodeId> = self
            .editors
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let n = db.new_element("editor", c);
                db.set_attr(n, "id", &format!("e{i}"));
                db.set_content(n, e);
                db.append_child(sec_editors, n, c);
                n
            })
            .collect();
        for (i, t) in self.topics.iter().enumerate() {
            let n = db.new_element("topic", c);
            db.set_attr(n, "id", &format!("t{i}"));
            db.set_content(n, &t.name);
            db.append_child(editor_nodes[t.editor], n, c);
            let sc = db.new_element("scope", c);
            db.set_content(sc, &t.scope);
            db.append_child(n, sc, c);
        }
        for (i, a) in self.articles.iter().enumerate() {
            let n = db.new_element("article", c);
            db.set_attr(n, "id", &format!("ar{i}"));
            db.set_attr(n, "issueIdRef", &format!("is{}", a.issue));
            db.set_attr(n, "topicIdRef", &format!("t{}", a.topic));
            db.append_child(sec_articles, n, c);
            Self::add_article_leaves(&mut db, n, a, &[c]);
        }
        db
    }

    /// Render as the deep nested design with replicated topic/editor.
    pub fn build_deep(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let mut articles_by_issue: Vec<Vec<usize>> = vec![Vec::new(); self.issues.len()];
        for (ai, a) in self.articles.iter().enumerate() {
            articles_by_issue[a.issue].push(ai);
        }
        for (i, d) in self.dates.iter().enumerate() {
            let dn = db.new_element("date", c);
            db.set_content(dn, d);
            db.append_child(McNodeId::DOCUMENT, dn, c);
            for (ii, is) in self.issues.iter().enumerate() {
                if is.date != i {
                    continue;
                }
                let isn = db.new_element("issue", c);
                db.set_attr(isn, "volume", &is.volume.to_string());
                db.set_attr(isn, "number", &is.number.to_string());
                db.append_child(dn, isn, c);
                for &ai in &articles_by_issue[ii] {
                    let a = &self.articles[ai];
                    let an = db.new_element("article", c);
                    db.set_attr(an, "id", &format!("ar{ai}"));
                    db.append_child(isn, an, c);
                    Self::add_article_leaves(&mut db, an, a, &[c]);
                    // Replicated topic with nested editor.
                    let t = &self.topics[a.topic];
                    let tn = db.new_element("topic", c);
                    db.set_content(tn, &t.name);
                    db.append_child(an, tn, c);
                    let sc = db.new_element("scope", c);
                    db.set_content(sc, &t.scope);
                    db.append_child(tn, sc, c);
                    let en = db.new_element("editor", c);
                    db.set_content(en, &self.editors[t.editor]);
                    db.append_child(tn, en, c);
                }
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SigmodData {
        SigmodData::generate(&SigmodConfig {
            scale: 0.05,
            seed: 5,
        })
    }

    #[test]
    fn deterministic() {
        let a = SigmodData::generate(&SigmodConfig { scale: 0.1, seed: 9 });
        let b = SigmodData::generate(&SigmodConfig { scale: 0.1, seed: 9 });
        assert_eq!(a.articles.len(), b.articles.len());
        assert_eq!(a.articles[3].title, b.articles[3].title);
    }

    #[test]
    fn mct_articles_have_two_colors() {
        let data = tiny();
        let db = data.build_mct();
        db.check_invariants();
        let date = db.color("date").unwrap();
        let editor = db.color("editor").unwrap();
        let mut count = 0;
        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            if db.name_str(n) == Some("article") {
                count += 1;
                assert!(db.colors(n).contains(date));
                assert!(db.colors(n).contains(editor));
                assert_eq!(db.name_str(db.parent(n, date).unwrap()), Some("issue"));
                assert_eq!(db.name_str(db.parent(n, editor).unwrap()), Some("topic"));
            }
        }
        assert_eq!(count as usize, data.articles.len());
    }

    #[test]
    fn shallow_has_three_trees() {
        let data = tiny();
        let db = data.build_shallow();
        let c = db.color("black").unwrap();
        let roots: Vec<&str> = db
            .children(McNodeId::DOCUMENT, c)
            .map(|n| db.name_str(n).unwrap())
            .collect();
        assert_eq!(roots, ["articles", "calendar", "editorial"]);
    }

    #[test]
    fn deep_replicates_topics_per_article() {
        let data = tiny();
        let db = data.build_deep();
        let mut topic_elems = 0;
        for i in 0..db.len() {
            if db.name_str(McNodeId(i as u32)) == Some("topic") {
                topic_elems += 1;
            }
        }
        assert_eq!(
            topic_elems as usize,
            data.articles.len(),
            "one replicated topic per article"
        );
    }

    #[test]
    fn element_counts_track_paper_shape() {
        let data = tiny();
        let (me, ..) = data.build_mct().counts();
        let (se, ..) = data.build_shallow().counts();
        let (de, ..) = data.build_deep().counts();
        // Paper Table 1: MCT ≈ shallow (±wrappers), deep ≈ 1.1–1.3×.
        assert!(se >= me && se <= me + 3);
        assert!(de > me);
    }
}
