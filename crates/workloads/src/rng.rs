//! A small, dependency-free pseudo-random number generator.
//!
//! The workload generators only need a seeded, deterministic stream of
//! uniform integers — not cryptographic quality — so an xorshift64*
//! generator (Vigna, "An experimental exploration of Marsaglia's
//! xorshift generators, scrambled") is plenty. Keeping it in-tree means
//! `cargo build` needs no network access and generated datasets are
//! reproducible byte-for-byte across toolchains.

use std::ops::{Range, RangeInclusive};

/// Seeded xorshift64* generator.
///
/// The API mirrors the subset of `rand::Rng` the workloads use
/// (`seed_from_u64`, `gen_range`), so generator code reads the same.
#[derive(Clone, Debug)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Create a generator from a seed. Seeds are scrambled through a
    /// splitmix64 round so that small consecutive seeds (0, 1, 2, …)
    /// yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer; also guarantees a non-zero state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng {
            state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`), by widening multiply.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform value in an integer range, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }
}

/// Integer ranges [`XorShiftRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample.
    fn sample(self, rng: &mut XorShiftRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShiftRng::seed_from_u64(7);
        let mut b = XorShiftRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShiftRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShiftRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=5u32);
            assert!((1..=5).contains(&w));
            let n = r.gen_range(0..3usize);
            assert!(n < 3);
            let s = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = XorShiftRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {b}");
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut r = XorShiftRng::seed_from_u64(3);
        assert_eq!(r.gen_range(4..=4), 4);
    }
}
