//! TPC-W-style workload data (§7: XBench/ToXgene substitute).
//!
//! A deterministic, seeded generator produces one entity graph —
//! countries, authors, items, customers, addresses, orders, order
//! lines, dates — and renders it into the paper's three database
//! designs:
//!
//! * **MCT** ([`TpcwData::build_mct`]): the five colored hierarchies of
//!   §7 —
//!   `cust`: customer–order–orderline, `bill`: billing
//!   address–order–orderline, `ship`: shipping
//!   address–order–orderline, `date`: date–order–orderline, and
//!   `auth`: author–item–orderline. Orders carry four colors, order
//!   lines five; leaf subelements follow their parents' colors
//!   (Definition 3.2).
//! * **Shallow** ([`TpcwData::build_shallow`]): one flat single-color
//!   tree per entity type, relationships as `*IdRef` attributes — a
//!   shallow schema in the paper's Definition 3.3 sense.
//! * **Deep** ([`TpcwData::build_deep`]): the paper's nesting —
//!   customer at the top, then order, addresses, country, item,
//!   author — replicating addresses, countries, dates, items, and
//!   authors at every use site (deep per Definition 3.3, with the
//!   attendant update anomalies).
//!
//! Cardinality ratios follow TPC-W's spirit (≈0.9 orders/customer, ≈3
//! lines/order, 2 addresses/customer); the absolute scale is set by
//! [`TpcwConfig::scale`].

use mct_core::{ColorId, McNodeId, MctDatabase};
use crate::rng::XorShiftRng;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpcwConfig {
    /// Scale factor; 1.0 ≈ 30 K elements in the MCT/shallow designs.
    pub scale: f64,
    /// RNG seed (generation is fully deterministic given scale+seed).
    pub seed: u64,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            scale: 1.0,
            seed: 0xC010F_u64,
        }
    }
}

/// One country.
#[derive(Clone, Debug)]
pub struct Country {
    /// Display name.
    pub name: String,
}

/// One author.
#[derive(Clone, Debug)]
pub struct Author {
    /// Author name.
    pub name: String,
    /// Short biography (replicated at every use site in the deep design).
    pub bio: String,
}

/// One catalog item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Title.
    pub title: String,
    /// Price in cents.
    pub cost: u32,
    /// Long description (TPC-W's `i_desc`).
    pub desc: String,
    /// Publisher name.
    pub publisher: String,
    /// Subject classification.
    pub subject: String,
    /// Index into authors.
    pub author: usize,
}

/// One registered customer.
#[derive(Clone, Debug)]
pub struct Customer {
    /// Unique login.
    pub uname: String,
    /// Display name.
    pub name: String,
}

/// One address.
#[derive(Clone, Debug)]
pub struct Address {
    /// Street line.
    pub street: String,
    /// City.
    pub city: String,
    /// Postal code.
    pub zip: String,
    /// Index into countries.
    pub country: usize,
}

/// One order.
#[derive(Clone, Debug)]
pub struct Order {
    /// Index into customers.
    pub customer: usize,
    /// Billing address index.
    pub bill_addr: usize,
    /// Shipping address index.
    pub ship_addr: usize,
    /// Index into dates.
    pub date: usize,
    /// Total in cents.
    pub total: u32,
    /// Status string.
    pub status: &'static str,
}

/// One order line.
#[derive(Clone, Debug)]
pub struct OrderLine {
    /// Index into orders.
    pub order: usize,
    /// Index into items.
    pub item: usize,
    /// Quantity.
    pub qty: u32,
}

/// The generated entity graph.
#[derive(Clone, Debug)]
pub struct TpcwData {
    /// Countries.
    pub countries: Vec<Country>,
    /// Authors.
    pub authors: Vec<Author>,
    /// Items.
    pub items: Vec<Item>,
    /// Customers.
    pub customers: Vec<Customer>,
    /// Addresses.
    pub addresses: Vec<Address>,
    /// Orders.
    pub orders: Vec<Order>,
    /// Order lines.
    pub orderlines: Vec<OrderLine>,
    /// Distinct order dates (ISO strings).
    pub dates: Vec<String>,
}

const CITIES: &[&str] = &[
    "Springfield", "Rivertown", "Lakewood", "Hillcrest", "Maplewood", "Fairview", "Oakdale",
    "Brookside", "Ashford", "Elmhurst",
];
const STATUSES: &[&str] = &["PENDING", "PROCESSING", "SHIPPED", "DELIVERED", "CANCELLED"];

impl TpcwData {
    /// Generate the entity graph.
    pub fn generate(cfg: &TpcwConfig) -> TpcwData {
        let mut rng = XorShiftRng::seed_from_u64(cfg.seed);
        let s = cfg.scale;
        let n_countries = 92usize;
        let n_authors = ((500.0 * s) as usize).max(10);
        let n_items = ((1000.0 * s) as usize).max(20);
        let n_customers = ((1440.0 * s) as usize).max(20);
        let n_addresses = n_customers * 2;
        let n_orders = ((n_customers as f64 * 0.9) as usize).max(10);
        let n_dates = 365usize.min(n_orders.max(30));

        let countries = (0..n_countries)
            .map(|i| Country {
                name: format!("Country-{i:03}"),
            })
            .collect();
        let authors = (0..n_authors)
            .map(|i| Author {
                name: format!("Author {} {}", FIRST[i % FIRST.len()], i),
                bio: format!(
                    "{} {} writes about the {} from a converted lighthouse near {}.",
                    FIRST[i % FIRST.len()],
                    LAST[i % LAST.len()],
                    NOUNS[i % NOUNS.len()],
                    CITIES[i % CITIES.len()],
                ),
            })
            .collect::<Vec<_>>();
        // Every author gets at least one item (round-robin head), so
        // the deep design — which only materializes authors at use
        // sites — covers the same author set as MCT/shallow.
        let items = (0..n_items)
            .map(|i| Item {
                title: format!("The {} of {} (vol. {})", NOUNS[i % NOUNS.len()],
                    FIRST[(i * 7) % FIRST.len()], i),
                cost: rng.gen_range(100u32..20000),
                desc: format!(
                    "A {} account of the {} that travels from {} to {}, tracing how the \
                     {} reshaped everything its keepers believed about the {}. Vol {i}.",
                    WORDSY[i % WORDSY.len()],
                    NOUNS[i % NOUNS.len()],
                    CITIES[i % CITIES.len()],
                    CITIES[(i + 3) % CITIES.len()],
                    NOUNS[(i * 5) % NOUNS.len()],
                    NOUNS[(i * 11) % NOUNS.len()],
                ),
                publisher: format!("{} House", LAST[i % LAST.len()]),
                subject: NOUNS[(i * 3) % NOUNS.len()].to_string(),
                author: if i < n_authors { i } else { rng.gen_range(0..n_authors) },
            })
            .collect();
        let customers = (0..n_customers)
            .map(|i| Customer {
                uname: format!("user{i:06}"),
                name: format!("{} {}", FIRST[i % FIRST.len()], LAST[(i / FIRST.len()) % LAST.len()]),
            })
            .collect();
        let addresses = (0..n_addresses)
            .map(|_| Address {
                street: format!("{} Main St", rng.gen_range(1..9999)),
                city: CITIES[rng.gen_range(0..CITIES.len())].to_string(),
                zip: format!("{:05}", rng.gen_range(10000..99999)),
                country: rng.gen_range(0..n_countries),
            })
            .collect();
        let dates: Vec<String> = (0..n_dates)
            .map(|i| format!("2003-{:02}-{:02}", 1 + (i / 28) % 12, 1 + i % 28))
            .collect();
        let orders: Vec<Order> = (0..n_orders)
            .map(|_| {
                let customer = rng.gen_range(0..n_customers);
                Order {
                    customer,
                    bill_addr: customer * 2,
                    ship_addr: customer * 2 + 1,
                    date: rng.gen_range(0..n_dates),
                    total: rng.gen_range(500u32..100000),
                    status: STATUSES[rng.gen_range(0..STATUSES.len())],
                }
            })
            .collect();
        // Every item is ordered at least once (cycle through items for
        // the first lines), again so deep covers the full catalog.
        let mut orderlines = Vec::new();
        let mut next_item = 0usize;
        for (oi, _) in orders.iter().enumerate() {
            let lines = rng.gen_range(1..=5);
            for _ in 0..lines {
                let item = if next_item < n_items {
                    let i = next_item;
                    next_item += 1;
                    i
                } else {
                    rng.gen_range(0..n_items)
                };
                orderlines.push(OrderLine {
                    order: oi,
                    item,
                    qty: rng.gen_range(1u32..=9),
                });
            }
        }
        TpcwData {
            countries,
            authors,
            items,
            customers,
            addresses,
            orders,
            orderlines,
            dates,
        }
    }

    // ------------------------------------------------------------------ MCT

    /// Render as a five-hierarchy MCT database.
    pub fn build_mct(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let cust = db.add_color("cust");
        let bill = db.add_color("bill");
        let ship = db.add_color("ship");
        let date = db.add_color("date");
        let auth = db.add_color("auth");

        // Roots per hierarchy.
        let customers: Vec<McNodeId> = self
            .customers
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let n = db.new_element("customer", cust);
                db.set_attr(n, "id", &format!("c{i}"));
                db.append_child(McNodeId::DOCUMENT, n, cust);
                leaf_multi(&mut db, n, "uname", &c.uname, &[cust]);
                leaf_multi(&mut db, n, "name", &c.name, &[cust]);
                n
            })
            .collect();
        // Addresses are roots in both the bill and ship hierarchies —
        // multi-colored roots.
        let addresses: Vec<McNodeId> = self
            .addresses
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let n = db.new_element("address", bill);
                db.set_attr(n, "id", &format!("a{i}"));
                db.append_child(McNodeId::DOCUMENT, n, bill);
                db.add_node_color(n, ship);
                db.append_child(McNodeId::DOCUMENT, n, ship);
                leaf_multi(&mut db, n, "street", &a.street, &[bill, ship]);
                leaf_multi(&mut db, n, "city", &a.city, &[bill, ship]);
                leaf_multi(&mut db, n, "zip", &a.zip, &[bill, ship]);
                leaf_multi(&mut db, n, "country", &self.countries[a.country].name, &[bill, ship]);
                n
            })
            .collect();
        let dates: Vec<McNodeId> = self
            .dates
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let n = db.new_element("date", date);
                db.set_attr(n, "id", &format!("d{i}"));
                db.set_content(n, d);
                db.append_child(McNodeId::DOCUMENT, n, date);
                n
            })
            .collect();
        let authors: Vec<McNodeId> = self
            .authors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let n = db.new_element("author", auth);
                db.set_attr(n, "id", &format!("au{i}"));
                db.append_child(McNodeId::DOCUMENT, n, auth);
                leaf_multi(&mut db, n, "name", &a.name, &[auth]);
                leaf_multi(&mut db, n, "bio", &a.bio, &[auth]);
                n
            })
            .collect();
        let items: Vec<McNodeId> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let n = db.new_element("item", auth);
                db.set_attr(n, "id", &format!("i{i}"));
                db.append_child(authors[it.author], n, auth);
                leaf_multi(&mut db, n, "title", &it.title, &[auth]);
                leaf_multi(&mut db, n, "cost", &it.cost.to_string(), &[auth]);
                leaf_multi(&mut db, n, "desc", &it.desc, &[auth]);
                leaf_multi(&mut db, n, "publisher", &it.publisher, &[auth]);
                leaf_multi(&mut db, n, "subject", &it.subject, &[auth]);
                n
            })
            .collect();
        // Orders: four colors.
        let orders: Vec<McNodeId> = self
            .orders
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let n = db.new_element("order", cust);
                db.set_attr(n, "id", &format!("o{i}"));
                db.append_child(customers[o.customer], n, cust);
                db.add_node_color(n, bill);
                db.append_child(addresses[o.bill_addr], n, bill);
                db.add_node_color(n, ship);
                db.append_child(addresses[o.ship_addr], n, ship);
                db.add_node_color(n, date);
                db.append_child(dates[o.date], n, date);
                leaf_multi(&mut db, n, "total", &o.total.to_string(), &[cust, bill, ship, date]);
                leaf_multi(&mut db, n, "status", o.status, &[cust, bill, ship, date]);
                n
            })
            .collect();
        // Order lines: five colors.
        for (i, l) in self.orderlines.iter().enumerate() {
            let n = db.new_element("orderline", cust);
            db.set_attr(n, "id", &format!("l{i}"));
            db.append_child(orders[l.order], n, cust);
            for (c, parent) in [
                (bill, orders[l.order]),
                (ship, orders[l.order]),
                (date, orders[l.order]),
                (auth, items[l.item]),
            ] {
                db.add_node_color(n, c);
                db.append_child(parent, n, c);
            }
            leaf_multi(&mut db, n, "qty", &l.qty.to_string(), &[cust, bill, ship, date, auth]);
        }
        db
    }

    // -------------------------------------------------------------- shallow

    /// Render as the flat single-color design with IDREF attributes.
    pub fn build_shallow(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let mk_section = |db: &mut MctDatabase, name: &str| {
            let s = db.new_element(name, c);
            db.append_child(McNodeId::DOCUMENT, s, c);
            s
        };
        let sec_customers = mk_section(&mut db, "customers");
        let sec_addresses = mk_section(&mut db, "addresses");
        let sec_dates = mk_section(&mut db, "dates");
        let sec_authors = mk_section(&mut db, "authors");
        let sec_items = mk_section(&mut db, "items");
        let sec_orders = mk_section(&mut db, "orders");
        let sec_lines = mk_section(&mut db, "orderlines");

        for (i, cu) in self.customers.iter().enumerate() {
            let n = db.new_element("customer", c);
            db.set_attr(n, "id", &format!("c{i}"));
            db.append_child(sec_customers, n, c);
            leaf_multi(&mut db, n, "uname", &cu.uname, &[c]);
            leaf_multi(&mut db, n, "name", &cu.name, &[c]);
        }
        for (i, a) in self.addresses.iter().enumerate() {
            let n = db.new_element("address", c);
            db.set_attr(n, "id", &format!("a{i}"));
            db.append_child(sec_addresses, n, c);
            leaf_multi(&mut db, n, "street", &a.street, &[c]);
            leaf_multi(&mut db, n, "city", &a.city, &[c]);
            leaf_multi(&mut db, n, "zip", &a.zip, &[c]);
            leaf_multi(&mut db, n, "country", &self.countries[a.country].name, &[c]);
        }
        for (i, d) in self.dates.iter().enumerate() {
            let n = db.new_element("date", c);
            db.set_attr(n, "id", &format!("d{i}"));
            db.set_content(n, d);
            db.append_child(sec_dates, n, c);
        }
        for (i, a) in self.authors.iter().enumerate() {
            let n = db.new_element("author", c);
            db.set_attr(n, "id", &format!("au{i}"));
            db.append_child(sec_authors, n, c);
            leaf_multi(&mut db, n, "name", &a.name, &[c]);
            leaf_multi(&mut db, n, "bio", &a.bio, &[c]);
        }
        for (i, it) in self.items.iter().enumerate() {
            let n = db.new_element("item", c);
            db.set_attr(n, "id", &format!("i{i}"));
            db.set_attr(n, "authorIdRef", &format!("au{}", it.author));
            db.append_child(sec_items, n, c);
            leaf_multi(&mut db, n, "title", &it.title, &[c]);
            leaf_multi(&mut db, n, "cost", &it.cost.to_string(), &[c]);
            leaf_multi(&mut db, n, "desc", &it.desc, &[c]);
            leaf_multi(&mut db, n, "publisher", &it.publisher, &[c]);
            leaf_multi(&mut db, n, "subject", &it.subject, &[c]);
        }
        for (i, o) in self.orders.iter().enumerate() {
            let n = db.new_element("order", c);
            db.set_attr(n, "id", &format!("o{i}"));
            db.set_attr(n, "customerIdRef", &format!("c{}", o.customer));
            db.set_attr(n, "billAddrIdRef", &format!("a{}", o.bill_addr));
            db.set_attr(n, "shipAddrIdRef", &format!("a{}", o.ship_addr));
            db.set_attr(n, "dateIdRef", &format!("d{}", o.date));
            db.append_child(sec_orders, n, c);
            leaf_multi(&mut db, n, "total", &o.total.to_string(), &[c]);
            leaf_multi(&mut db, n, "status", o.status, &[c]);
        }
        for (i, l) in self.orderlines.iter().enumerate() {
            let n = db.new_element("orderline", c);
            db.set_attr(n, "id", &format!("l{i}"));
            db.set_attr(n, "orderIdRef", &format!("o{}", l.order));
            db.set_attr(n, "itemIdRef", &format!("i{}", l.item));
            db.append_child(sec_lines, n, c);
            leaf_multi(&mut db, n, "qty", &l.qty.to_string(), &[c]);
        }
        db
    }

    // ----------------------------------------------------------------- deep

    /// Render as the fully nested deep design (replication of
    /// addresses, countries, dates, items, and authors at use sites).
    pub fn build_deep(&self) -> MctDatabase {
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let root = db.new_element("customers", c);
        db.append_child(McNodeId::DOCUMENT, root, c);
        // Group orders (and their lines) by customer.
        let mut orders_by_cust: Vec<Vec<usize>> = vec![Vec::new(); self.customers.len()];
        for (oi, o) in self.orders.iter().enumerate() {
            orders_by_cust[o.customer].push(oi);
        }
        let mut lines_by_order: Vec<Vec<usize>> = vec![Vec::new(); self.orders.len()];
        for (li, l) in self.orderlines.iter().enumerate() {
            lines_by_order[l.order].push(li);
        }
        for (ci, cu) in self.customers.iter().enumerate() {
            let cn = db.new_element("customer", c);
            db.set_attr(cn, "id", &format!("c{ci}"));
            db.append_child(root, cn, c);
            leaf_multi(&mut db, cn, "uname", &cu.uname, &[c]);
            leaf_multi(&mut db, cn, "name", &cu.name, &[c]);
            for &oi in &orders_by_cust[ci] {
                let o = &self.orders[oi];
                let on = db.new_element("order", c);
                db.set_attr(on, "id", &format!("o{oi}"));
                db.append_child(cn, on, c);
                leaf_multi(&mut db, on, "total", &o.total.to_string(), &[c]);
                leaf_multi(&mut db, on, "status", o.status, &[c]);
                leaf_multi(&mut db, on, "date", &self.dates[o.date], &[c]);
                // Replicated addresses with nested country.
                for (role, ai) in [("billing", o.bill_addr), ("shipping", o.ship_addr)] {
                    let a = &self.addresses[ai];
                    let an = db.new_element("address", c);
                    db.set_attr(an, "role", role);
                    db.append_child(on, an, c);
                    leaf_multi(&mut db, an, "street", &a.street, &[c]);
                    leaf_multi(&mut db, an, "city", &a.city, &[c]);
                    leaf_multi(&mut db, an, "zip", &a.zip, &[c]);
                    let con = db.new_element("country", c);
                    db.append_child(an, con, c);
                    leaf_multi(&mut db, con, "name", &self.countries[a.country].name, &[c]);
                }
                for &li in &lines_by_order[oi] {
                    let l = &self.orderlines[li];
                    let ln = db.new_element("orderline", c);
                    db.set_attr(ln, "id", &format!("l{li}"));
                    db.append_child(on, ln, c);
                    leaf_multi(&mut db, ln, "qty", &l.qty.to_string(), &[c]);
                    // Replicated item with nested author.
                    let it = &self.items[l.item];
                    let itn = db.new_element("item", c);
                    db.set_attr(itn, "itemkey", &format!("i{}", l.item));
                    db.append_child(ln, itn, c);
                    leaf_multi(&mut db, itn, "title", &it.title, &[c]);
                    leaf_multi(&mut db, itn, "cost", &it.cost.to_string(), &[c]);
                    leaf_multi(&mut db, itn, "desc", &it.desc, &[c]);
                    leaf_multi(&mut db, itn, "publisher", &it.publisher, &[c]);
                    leaf_multi(&mut db, itn, "subject", &it.subject, &[c]);
                    let aun = db.new_element("author", c);
                    db.set_attr(aun, "authorkey", &format!("au{}", it.author));
                    db.append_child(itn, aun, c);
                    leaf_multi(&mut db, aun, "name", &self.authors[it.author].name, &[c]);
                    leaf_multi(&mut db, aun, "bio", &self.authors[it.author].bio, &[c]);
                }
            }
        }
        db
    }
}

/// Create a content leaf child carrying all the listed colors (the
/// same node appended once per color — Definition 3.2).
fn leaf_multi(
    db: &mut MctDatabase,
    parent: McNodeId,
    name: &str,
    content: &str,
    colors: &[ColorId],
) -> McNodeId {
    let n = db.new_element(name, colors[0]);
    db.set_content(n, content);
    db.append_child(parent, n, colors[0]);
    for &c in &colors[1..] {
        db.add_node_color(n, c);
        db.append_child(parent, n, c);
    }
    n
}

const FIRST: &[&str] = &[
    "Ada", "Ben", "Cora", "Dev", "Elif", "Femi", "Gail", "Hugo", "Ines", "Jomo", "Kira", "Liam",
    "Mina", "Noor", "Omar", "Pia", "Quin", "Rosa", "Sami", "Tess",
];
const LAST: &[&str] = &[
    "Abbott", "Blake", "Chen", "Diaz", "Eng", "Fox", "Gupta", "Hale", "Ito", "Jones", "Khan",
    "Lopez", "Mori", "Ng", "Okafor", "Patel", "Quist", "Reyes", "Sato", "Tran",
];
const WORDSY: &[&str] = &[
    "meticulous", "sweeping", "quiet", "restless", "luminous", "wry", "patient", "stubborn",
];
const NOUNS: &[&str] = &[
    "Garden", "River", "Mountain", "Archive", "Mirror", "Engine", "Harbor", "Lantern", "Meadow",
    "Compass", "Orchard", "Quarry", "Signal", "Thicket", "Voyage",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpcwData {
        TpcwData::generate(&TpcwConfig {
            scale: 0.02,
            seed: 7,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpcwData::generate(&TpcwConfig { scale: 0.05, seed: 1 });
        let b = TpcwData::generate(&TpcwConfig { scale: 0.05, seed: 1 });
        assert_eq!(a.orders.len(), b.orders.len());
        assert_eq!(a.items[0].title, b.items[0].title);
        assert_eq!(a.orderlines.len(), b.orderlines.len());
        let c = TpcwData::generate(&TpcwConfig { scale: 0.05, seed: 2 });
        assert_ne!(a.items[0].cost, c.items[0].cost);
    }

    #[test]
    fn mct_and_shallow_have_same_element_count() {
        let data = tiny();
        let mct = data.build_mct();
        let shallow = data.build_shallow();
        let (me, _, mc) = mct.counts();
        let (se, _, sc) = shallow.counts();
        // Shallow adds 7 section wrappers; otherwise identical (Table 1).
        assert_eq!(se, me + 7);
        assert_eq!(sc, mc);
    }

    #[test]
    fn deep_replicates_data() {
        let data = tiny();
        let deep = data.build_deep();
        let mct = data.build_mct();
        let (de, ..) = deep.counts();
        let (me, ..) = mct.counts();
        // At tiny scale the replication factor is modest; at bench
        // scale it approaches the paper's ~2.6×.
        assert!(
            de as f64 > me as f64 * 1.3,
            "deep should blow up element count: deep={de} mct={me}"
        );
    }

    #[test]
    fn mct_hierarchies_are_wired() {
        let data = tiny();
        let mut db = data.build_mct();
        db.check_invariants();
        let cust = db.color("cust").unwrap();
        let auth = db.color("auth").unwrap();
        db.ensure_annotated(cust);
        db.ensure_annotated(auth);
        // Every orderline has parents in all five hierarchies.
        let five = ["cust", "bill", "ship", "date", "auth"];
        let mut lines = 0;
        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            if db.name_str(n) == Some("orderline") {
                lines += 1;
                for cname in five {
                    let c = db.color(cname).unwrap();
                    assert!(
                        db.parent(n, c).is_some(),
                        "orderline missing parent in {cname}"
                    );
                }
                // cust-parent is an order, auth-parent is an item.
                let po = db.parent(n, cust).unwrap();
                assert_eq!(db.name_str(po), Some("order"));
                let pi = db.parent(n, auth).unwrap();
                assert_eq!(db.name_str(pi), Some("item"));
            }
        }
        assert_eq!(lines as usize, data.orderlines.len());
    }

    #[test]
    fn shallow_idrefs_resolve() {
        let data = tiny();
        let db = data.build_shallow();
        let c = db.color("black").unwrap();
        // Collect ids.
        let mut ids = std::collections::HashSet::new();
        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            if let Some(id) = db.attr(n, "id") {
                ids.insert(id.to_string());
            }
        }
        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            for attr in ["customerIdRef", "billAddrIdRef", "itemIdRef", "orderIdRef", "dateIdRef", "authorIdRef"] {
                if let Some(r) = db.attr(n, attr) {
                    assert!(ids.contains(r), "dangling {attr}={r}");
                }
            }
        }
        let _ = c;
    }

    #[test]
    fn deep_is_single_rooted_nested() {
        let data = tiny();
        let db = data.build_deep();
        let c = db.color("black").unwrap();
        let roots: Vec<_> = db.children(McNodeId::DOCUMENT, c).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(db.name_str(roots[0]), Some("customers"));
        // items appear under orderlines.
        let mut found = false;
        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            if db.name_str(n) == Some("item") {
                let p = db.parent(n, c).unwrap();
                assert_eq!(db.name_str(p), Some("orderline"));
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn scales_roughly_linearly() {
        let small = TpcwData::generate(&TpcwConfig { scale: 0.05, seed: 3 });
        let big = TpcwData::generate(&TpcwConfig { scale: 0.1, seed: 3 });
        let ratio = big.orderlines.len() as f64 / small.orderlines.len() as f64;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }
}
