//! The paper's running example: the Figure 2 movie database.
//!
//! Three colored hierarchies — red (movie-genre), green (Oscar
//! movie-award, temporal), blue (actors) — over shared movie,
//! movie-role, and name nodes, sized so the Figure 3 queries Q1–Q5 all
//! have non-trivial answers. Used by the examples and integration
//! tests.

use mct_core::{McNodeId, MctDatabase};

/// Handles to interesting nodes of the Figure 2 database.
#[derive(Debug)]
pub struct MovieDb {
    /// The database.
    pub db: MctDatabase,
    /// The comedy genre node.
    pub comedy: McNodeId,
    /// The sub-genre (slapstick) node.
    pub slapstick: McNodeId,
    /// The best-movie award year nodes.
    pub award_years: Vec<McNodeId>,
    /// All movie nodes.
    pub movies: Vec<McNodeId>,
    /// All actor nodes.
    pub actors: Vec<McNodeId>,
}

/// Build the Figure 2 movie database.
pub fn build() -> MovieDb {
    let mut db = MctDatabase::new();
    let red = db.add_color("red");
    let green = db.add_color("green");
    let blue = db.add_color("blue");

    // Red: topic-like genre hierarchy (comedy > slapstick, action).
    let comedy = db.new_element("movie-genre", red);
    db.append_child(McNodeId::DOCUMENT, comedy, red);
    let cname = db.new_element("name", red);
    db.set_content(cname, "Comedy");
    db.append_child(comedy, cname, red);
    let slapstick = db.new_element("movie-genre", red);
    db.append_child(comedy, slapstick, red);
    let sname = db.new_element("name", red);
    db.set_content(sname, "Slapstick");
    db.append_child(slapstick, sname, red);
    let action = db.new_element("movie-genre", red);
    db.append_child(McNodeId::DOCUMENT, action, red);
    let aname = db.new_element("name", red);
    db.set_content(aname, "Action");
    db.append_child(action, aname, red);

    // Green: temporal hierarchy of best-movie awards.
    let oscars = db.new_element("movie-award", green);
    db.append_child(McNodeId::DOCUMENT, oscars, green);
    let oname = db.new_element("name", green);
    db.set_content(oname, "Oscar Best Movie");
    db.append_child(oscars, oname, green);
    let mut award_years = Vec::new();
    for year in ["1950", "1951", "1952"] {
        let y = db.new_element("movie-award", green);
        db.append_child(oscars, y, green);
        let yname = db.new_element("name", green);
        db.set_content(yname, &format!("Oscar {year}"));
        db.append_child(y, yname, green);
        award_years.push(y);
    }

    // Blue: shallow actor hierarchy.
    let mut actors = Vec::new();
    for actor_name in ["Bette Davis", "Buster Keaton", "Anne Baxter"] {
        let a = db.new_element("actor", blue);
        db.append_child(McNodeId::DOCUMENT, a, blue);
        let an = db.new_element("name", blue);
        db.set_content(an, actor_name);
        db.append_child(a, an, blue);
        actors.push(a);
    }

    // Movies: (title, genre node, award-year index or None, votes,
    // acting roles as (actor index, role name)).
    type MovieSpec<'a> = (&'a str, McNodeId, Option<usize>, Option<u32>, Vec<(usize, &'a str)>);
    let spec: Vec<MovieSpec> = vec![
        ("All About Eve", comedy, Some(0), Some(11), vec![(0, "Margo Channing"), (2, "Eve Harrington")]),
        ("An Evening of Errors", slapstick, Some(1), Some(14), vec![(1, "The Butler")]),
        ("Eve of Adventure", action, None, None, vec![(2, "The Pilot")]),
        ("Quiet Harbors", comedy, Some(2), Some(7), vec![(0, "The Keeper")]),
        ("Plain Comedy", comedy, None, None, vec![(1, "Everyman")]),
    ];
    let mut movies = Vec::new();
    for (title, genre, award, votes, roles) in spec {
        let m = db.new_element("movie", red);
        db.append_child(genre, m, red);
        let mn = db.new_element("name", red);
        db.set_content(mn, title);
        db.append_child(m, mn, red);
        if let Some(ai) = award {
            db.add_node_color(m, green);
            db.append_child(award_years[ai], m, green);
            db.add_node_color(mn, green);
            db.append_child(m, mn, green);
            if let Some(v) = votes {
                let vn = db.new_element("votes", green);
                db.set_content(vn, &v.to_string());
                db.append_child(m, vn, green);
            }
        }
        for (actor_i, role_name) in roles {
            // movie-role: red (under movie) + blue (under actor) — and
            // deliberately NOT green, per §2.2.
            let r = db.new_element("movie-role", red);
            db.append_child(m, r, red);
            db.add_node_color(r, blue);
            db.append_child(actors[actor_i], r, blue);
            let rn = db.new_element("name", red);
            db.set_content(rn, role_name);
            db.append_child(r, rn, red);
            db.add_node_color(rn, blue);
            db.append_child(r, rn, blue);
        }
        movies.push(m);
    }
    MovieDb {
        db,
        comedy,
        slapstick,
        award_years,
        movies,
        actors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape() {
        let m = build();
        m.db.check_invariants();
        let red = m.db.color("red").unwrap();
        let green = m.db.color("green").unwrap();
        let blue = m.db.color("blue").unwrap();
        assert_eq!(m.movies.len(), 5);
        // Nominated movies are red+green.
        let nominated = m
            .movies
            .iter()
            .filter(|&&mv| m.db.colors(mv).contains(green))
            .count();
        assert_eq!(nominated, 3);
        // Every movie is red.
        assert!(m.movies.iter().all(|&mv| m.db.colors(mv).contains(red)));
        // Roles are red+blue, never green.
        for i in 0..m.db.len() {
            let n = McNodeId(i as u32);
            if m.db.name_str(n) == Some("movie-role") {
                assert!(m.db.colors(n).contains(red));
                assert!(m.db.colors(n).contains(blue));
                assert!(!m.db.colors(n).contains(green), "§2.2: roles are not green");
            }
        }
        // Sub-genre nesting.
        assert_eq!(m.db.parent(m.slapstick, red), Some(m.comedy));
    }
}
