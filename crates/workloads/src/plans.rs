//! Hand-written physical plans for every benchmark query (§7).
//!
//! The paper: "For all the experimentation described next, we manually
//! specified the query plan, always choosing the one expected to be
//! the best." This module is those plans, one per (query, schema):
//!
//! * MCT plans use per-color index scans, structural navigation, and
//!   the [`mct_core::cross_tree_join`]-based
//!   [`mct_query::ops::cross_tree_op`] for color transitions;
//! * shallow plans use content/attribute index lookups plus hash
//!   **value joins** over the IDREF attributes;
//! * deep plans are purely structural but operate over replicated
//!   data, and apply duplicate elimination where the query demands it
//!   (skipped by the `*D` variants, exactly like the paper's Table 2).

use crate::queries::{Params, SchemaKind};
use mct_storage::DiskManager;
use mct_core::{ColorId, McNodeId, StoredDb, StructRef};
use mct_query::ops::{
    cross_tree_op, dup_elim, index_scan, select_attr_eq, select_contains, select_content_eq,
    select_number_cmp, structural_join, value_join_eq, KeySpec, NumCmp, Rel, Tuple,
};

type R<T> = mct_storage::Result<T>;

/// Outcome of one plan execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Result cardinality (after dup-elim unless suppressed).
    pub results: usize,
    /// Elements updated (updates only).
    pub updated: usize,
}

/// Run a read query's plan. `dedup` = apply duplicate elimination
/// (false reproduces the `*D` rows of Table 2).
pub fn run_read<D: DiskManager>(
    s: &mut StoredDb<D>,
    id: &str,
    schema: SchemaKind,
    p: &Params,
    dedup: bool,
) -> R<PlanOutcome> {
    let n = match id {
        "TQ1" => tq1(s, schema, p)?,
        "TQ2" => tq2(s, schema, p)?,
        "TQ3" => tq3(s, schema, p)?,
        "TQ4" => tq4(s, schema, p)?,
        "TQ5" => tq5(s, schema, p)?,
        "TQ6" => tq6(s, schema, p)?,
        "TQ7" => tq7(s, schema, dedup)?,
        "TQ8" => tq8(s, schema)?,
        "TQ9" => tq9(s, schema, p)?,
        "TQ10" => tq10(s, schema, p)?,
        "TQ11" => tq11(s, schema, p)?,
        "TQ12" => tq12(s, schema, p, dedup)?,
        "TQ13" => tq13(s, schema, p)?,
        "TQ14" => tq14(s, schema, p)?,
        "TQ15" => tq15(s, schema, p)?,
        "TQ16" => tq16(s, schema, p)?,
        "SQ1" => sq1(s, schema, p)?,
        "SQ2" => sq2(s, schema, p)?,
        "SQ3" => sq3(s, schema, p)?,
        "SQ4" => sq4(s, schema, dedup)?,
        "SQ5" => sq5(s, schema, p)?,
        other => panic!("unknown read query {other}"),
    };
    Ok(PlanOutcome {
        results: n,
        updated: 0,
    })
}

/// Run an update via its (schema-specific) parsed text through the
/// two-phase update executor.
pub fn run_update<D: DiskManager>(
    s: &mut StoredDb<D>,
    wq: &crate::queries::WorkloadQuery,
    schema: SchemaKind,
) -> R<PlanOutcome> {
    let text = match schema {
        SchemaKind::Mct => &wq.mct_text,
        SchemaKind::Shallow => &wq.shallow_text,
        SchemaKind::Deep => &wq.deep_text,
    };
    let stmt = mct_query::parse_update(text)
        .unwrap_or_else(|e| panic!("{} {:?} text does not parse: {e}", wq.id, schema));
    let default = match schema {
        SchemaKind::Mct => None,
        _ => Some("black"),
    };
    let out = mct_query::execute_update_with(s, &stmt, default)
        .unwrap_or_else(|e| panic!("{} {:?} failed: {e}", wq.id, schema));
    Ok(PlanOutcome {
        results: out.tuples,
        updated: out.elements,
    })
}

// ---------------------------------------------------------------------------
// Plan building blocks
// ---------------------------------------------------------------------------

fn color<D: DiskManager>(s: &StoredDb<D>, name: &str) -> ColorId {
    s.db.color(name)
        .unwrap_or_else(|| panic!("color {name} missing"))
}

/// Single-column tuples for a node set, coded in `c`, start-sorted.
fn to_tuples<D: DiskManager>(s: &mut StoredDb<D>, nodes: Vec<McNodeId>, c: ColorId) -> Vec<Tuple> {
    s.db.ensure_annotated(c);
    let mut out: Vec<Tuple> = nodes
        .into_iter()
        .filter_map(|n| s.db.code(n, c).map(|code| vec![StructRef { node: n, code }]))
        .collect();
    out.sort_by_key(|t| t[0].code.start);
    out
}

/// Content-index lookup restricted to elements named `elem`.
fn by_content<D: DiskManager>(s: &mut StoredDb<D>, value: &str, elem: &str, c: ColorId) -> R<Vec<Tuple>> {
    let hits = s.content_lookup(value)?;
    let filtered: Vec<McNodeId> = hits
        .into_iter()
        .filter(|&n| s.db.name_str(n) == Some(elem))
        .collect();
    Ok(to_tuples(s, filtered, c))
}

/// Replace `col` with its parent in `c`; drop tuples without one.
fn parents<D: DiskManager>(s: &mut StoredDb<D>, input: Vec<Tuple>, col: usize, c: ColorId) -> Vec<Tuple> {
    s.db.ensure_annotated(c);
    let mut out = Vec::with_capacity(input.len());
    for mut t in input {
        if let Some(p) = s.db.parent(t[col].node, c) {
            if p == McNodeId::DOCUMENT {
                continue;
            }
            let code = s.db.code(p, c).expect("annotated");
            t[col] = StructRef { node: p, code };
            out.push(t);
        }
    }
    out.sort_by_key(|t| t[col].code.start);
    out
}

/// Expand each tuple once per `name`-child (in `c`) of column `col`;
/// the child is appended as a new column.
fn children_named<D: DiskManager>(s: &mut StoredDb<D>, input: Vec<Tuple>, col: usize, c: ColorId, name: &str) -> Vec<Tuple> {
    s.db.ensure_annotated(c);
    let mut out = Vec::new();
    for t in input {
        let kids: Vec<McNodeId> = s
            .db
            .children(t[col].node, c)
            .filter(|&ch| s.db.name_str(ch) == Some(name))
            .collect();
        for ch in kids {
            let code = s.db.code(ch, c).expect("annotated");
            let mut nt = t.clone();
            nt.push(StructRef { node: ch, code });
            out.push(nt);
        }
    }
    out
}

/// Expand each tuple once per `name`-descendant (in `c`) of `col`.
fn descendants_named<D: DiskManager>(
    s: &mut StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    c: ColorId,
    name: &str,
) -> Vec<Tuple> {
    s.db.ensure_annotated(c);
    let mut out = Vec::new();
    for t in input {
        let descs: Vec<McNodeId> = s
            .db
            .descendants(t[col].node, c)
            .filter(|&d| s.db.name_str(d) == Some(name))
            .collect();
        for d in descs {
            let code = s.db.code(d, c).expect("annotated");
            let mut nt = t.clone();
            nt.push(StructRef { node: d, code });
            out.push(nt);
        }
    }
    out
}

/// Keep only the last column.
fn last_col(input: Vec<Tuple>) -> Vec<Tuple> {
    input
        .into_iter()
        .map(|t| vec![*t.last().expect("non-empty tuple")])
        .collect()
}

/// Distinct by the fetched content of the last column.
fn distinct_by_content<D: DiskManager>(s: &mut StoredDb<D>, input: Vec<Tuple>) -> R<usize> {
    let mut seen = std::collections::HashSet::new();
    for t in &input {
        let v = s.fetch_content(t.last().unwrap().node)?.unwrap_or_default();
        seen.insert(v);
    }
    Ok(seen.len())
}

// ---------------------------------------------------------------------------
// TPC-W reads
// ---------------------------------------------------------------------------

fn tq1<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let unames = by_content(s, &p.uname, "uname", c)?;
    let custs = parents(s, unames, 0, c);
    let names = children_named(s, custs, 0, c, "name");
    Ok(names.len())
}

fn tq2<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let totals = index_scan(s, c, "total")?;
    let hot = select_number_cmp(s, totals, 0, NumCmp::Gt, f64::from(p.total_hi))?;
    Ok(parents(s, hot, 0, c).len())
}

fn tq3<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let cust = color(s, "cust");
            let auth = color(s, "auth");
            let unames = by_content(s, &p.uname, "uname", cust)?;
            let custs = parents(s, unames, 0, cust);
            let orders = last_col(children_named(s, custs, 0, cust, "order"));
            let lines = last_col(children_named(s, orders, 0, cust, "orderline"));
            let lines = cross_tree_op(s, lines, 0, auth)?;
            let items = parents(s, lines, 0, auth);
            let items = dup_elim(items, &[0]);
            distinct_by_title(s, items)
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let unames = by_content(s, &p.uname, "uname", c)?;
            let custs = parents(s, unames, 0, c);
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("customerIdRef".into()),
                &custs, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("orderIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            let items = index_scan(s, c, "item")?;
            let j3 = value_join_eq(
                s, &j2, 0, &KeySpec::Attr("itemIdRef".into()),
                &items, 0, &KeySpec::Attr("id".into()),
            )?;
            let items_only = last_col(j3);
            let items_only = dup_elim(items_only, &[0]);
            distinct_by_title(s, items_only)
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let unames = by_content(s, &p.uname, "uname", c)?;
            let custs = parents(s, unames, 0, c);
            let items = last_col(descendants_named(s, custs, 0, c, "item"));
            distinct_by_title(s, items)
        }
    }
}

/// Count distinct item titles (TQ3's projection).
fn distinct_by_title<D: DiskManager>(s: &mut StoredDb<D>, items: Vec<Tuple>) -> R<usize> {
    let c = first_color_of(s, &items);
    let titles = match c {
        Some(c) => last_col(children_named(s, items, 0, c, "title")),
        None => return Ok(0),
    };
    distinct_by_content(s, titles)
}

fn first_color_of<D: DiskManager>(s: &StoredDb<D>, tuples: &[Tuple]) -> Option<ColorId> {
    tuples
        .first()
        .and_then(|t| s.db.colors(t[0].node).iter().next())
}

fn tq4<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let qtys = index_scan(s, c, "qty")?;
    let hit = select_number_cmp(s, qtys, 0, NumCmp::Eq, f64::from(p.qty))?;
    Ok(parents(s, hit, 0, c).len())
}

fn tq5<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let names = by_content(s, &p.cust_name, "name", c)?;
    // Restrict to customer names (name elements also occur elsewhere).
    let custs = parents(s, names, 0, c);
    let custs: Vec<Tuple> = custs
        .into_iter()
        .filter(|t| s.db.name_str(t[0].node) == Some("customer"))
        .collect();
    Ok(dup_elim(custs, &[0]).len())
}

fn tq6<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let statuses = index_scan(s, c, "status")?;
    let hit = select_content_eq(s, statuses, 0, &p.status)?;
    Ok(parents(s, hit, 0, c).len())
}

fn tq7<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, dedup: bool) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let auth = color(s, "auth");
            let authors = index_scan(s, auth, "author")?;
            let names = index_scan(s, auth, "name")?;
            let joined = structural_join(&authors, 0, &names, 0, Rel::Child);
            let names_only = last_col(joined);
            if dedup {
                distinct_by_content(s, names_only)
            } else {
                Ok(names_only.len())
            }
        }
        SchemaKind::Shallow | SchemaKind::Deep => {
            let c = color(s, "black");
            let authors = index_scan(s, c, "author")?;
            let names = index_scan(s, c, "name")?;
            let joined = structural_join(&authors, 0, &names, 0, Rel::Child);
            let names_only = last_col(joined);
            if dedup {
                distinct_by_content(s, names_only)
            } else {
                Ok(names_only.len())
            }
        }
    }
}

fn tq8<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "cust"),
        _ => color(s, "black"),
    };
    let orders = index_scan(s, c, "order")?;
    let _count = orders.len();
    Ok(1) // a single aggregate row
}

fn tq9<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let auth = color(s, "auth");
            let costs = index_scan(s, auth, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_hi))?;
            let items = parents(s, hot, 0, auth);
            let lines = last_col(children_named(s, items, 0, auth, "orderline"));
            Ok(lines.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let costs = index_scan(s, c, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_hi))?;
            let items = parents(s, hot, 0, c);
            let lines = index_scan(s, c, "orderline")?;
            let j = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("itemIdRef".into()),
                &items, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let costs = index_scan(s, c, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_hi))?;
            let items = parents(s, hot, 0, c);
            let lines = parents(s, items, 0, c); // item's parent is the orderline
            Ok(lines.len())
        }
    }
}

fn tq10<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let ship = color(s, "ship");
            let auth = color(s, "auth");
            let cities = by_content(s, &p.city, "city", ship)?;
            let addrs = parents(s, cities, 0, ship);
            let orders = last_col(children_named(s, addrs, 0, ship, "order"));
            let lines = last_col(children_named(s, orders, 0, ship, "orderline"));
            let lines = cross_tree_op(s, lines, 0, auth)?;
            let items = parents(s, lines, 0, auth);
            let authors = parents(s, items, 0, auth);
            let authors = dup_elim(authors, &[0]);
            Ok(authors.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let cities = by_content(s, &p.city, "city", c)?;
            let addrs = parents(s, cities, 0, c);
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("shipAddrIdRef".into()),
                &addrs, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("orderIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            let items = index_scan(s, c, "item")?;
            let j3 = value_join_eq(
                s, &j2, 0, &KeySpec::Attr("itemIdRef".into()),
                &items, 0, &KeySpec::Attr("id".into()),
            )?;
            let authors = index_scan(s, c, "author")?;
            // j3 columns: [line, order, addr, item].
            let j4 = value_join_eq(
                s, &j3, 3, &KeySpec::Attr("authorIdRef".into()),
                &authors, 0, &KeySpec::Attr("id".into()),
            )?;
            let a = last_col(j4);
            Ok(dup_elim(a, &[0]).len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let cities = by_content(s, &p.city, "city", c)?;
            let addrs = parents(s, cities, 0, c);
            let ship_addrs = select_attr_eq(s, addrs, 0, "role", "shipping")?;
            let orders = parents(s, ship_addrs, 0, c);
            let lines = last_col(children_named(s, orders, 0, c, "orderline"));
            let items = last_col(children_named(s, lines, 0, c, "item"));
            let authors = last_col(children_named(s, items, 0, c, "author"));
            // Replicated authors: distinct by the authorkey attribute.
            let mut seen = std::collections::HashSet::new();
            for t in &authors {
                let attrs = s.fetch_attrs(t[0].node)?;
                if let Some((_, v)) = attrs.iter().find(|(n, _)| n == "authorkey") {
                    seen.insert(v.clone());
                }
            }
            Ok(seen.len())
        }
    }
}

fn tq11<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let auth = color(s, "auth");
            let names = by_content(s, &p.author, "name", auth)?;
            let authors = parents(s, names, 0, auth);
            let items = last_col(children_named(s, authors, 0, auth, "item"));
            let lines = last_col(children_named(s, items, 0, auth, "orderline"));
            Ok(lines.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let names = by_content(s, &p.author, "name", c)?;
            let authors = parents(s, names, 0, c);
            let items = index_scan(s, c, "item")?;
            let j1 = value_join_eq(
                s, &items, 0, &KeySpec::Attr("authorIdRef".into()),
                &authors, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("itemIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j2.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let names = by_content(s, &p.author, "name", c)?;
            let authors = parents(s, names, 0, c);
            // Only the replicated authors under items qualify here.
            let items: Vec<Tuple> = parents(s, authors, 0, c)
                .into_iter()
                .filter(|t| s.db.name_str(t[0].node) == Some("item"))
                .collect();
            let lines = parents(s, items, 0, c);
            Ok(lines.len())
        }
    }
}

fn tq12<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params, dedup: bool) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let cust = color(s, "cust");
            let ship = color(s, "ship");
            let unames = by_content(s, &p.uname, "uname", cust)?;
            let custs = parents(s, unames, 0, cust);
            let orders = last_col(children_named(s, custs, 0, cust, "order"));
            let orders = cross_tree_op(s, orders, 0, ship)?;
            let addrs = parents(s, orders, 0, ship);
            let countries = last_col(children_named(s, addrs, 0, ship, "country"));
            if dedup {
                distinct_by_content(s, countries)
            } else {
                Ok(countries.len())
            }
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let unames = by_content(s, &p.uname, "uname", c)?;
            let custs = parents(s, unames, 0, c);
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("customerIdRef".into()),
                &custs, 0, &KeySpec::Attr("id".into()),
            )?;
            let addrs = index_scan(s, c, "address")?;
            let j2 = value_join_eq(
                s, &j1, 0, &KeySpec::Attr("shipAddrIdRef".into()),
                &addrs, 0, &KeySpec::Attr("id".into()),
            )?;
            let a = last_col(j2);
            let countries = last_col(children_named(s, a, 0, c, "country"));
            if dedup {
                distinct_by_content(s, countries)
            } else {
                Ok(countries.len())
            }
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let unames = by_content(s, &p.uname, "uname", c)?;
            let custs = parents(s, unames, 0, c);
            let orders = last_col(children_named(s, custs, 0, c, "order"));
            let addrs = last_col(children_named(s, orders, 0, c, "address"));
            let addrs = select_attr_eq(s, addrs, 0, "role", "shipping")?;
            let countries = last_col(children_named(s, addrs, 0, c, "country"));
            let names = last_col(children_named(s, countries, 0, c, "name"));
            if dedup {
                distinct_by_content(s, names)
            } else {
                Ok(names.len())
            }
        }
    }
}

fn tq13<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    shipped_to_city_lines(s, schema, &p.city)
}

fn shipped_to_city_lines<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, city: &str) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let ship = color(s, "ship");
            let cities = by_content(s, city, "city", ship)?;
            let addrs = parents(s, cities, 0, ship);
            let orders = last_col(children_named(s, addrs, 0, ship, "order"));
            let lines = last_col(children_named(s, orders, 0, ship, "orderline"));
            Ok(lines.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let cities = by_content(s, city, "city", c)?;
            let addrs = parents(s, cities, 0, c);
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("shipAddrIdRef".into()),
                &addrs, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("orderIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j2.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            let cities = by_content(s, city, "city", c)?;
            let addrs = parents(s, cities, 0, c);
            let addrs = select_attr_eq(s, addrs, 0, "role", "shipping")?;
            let orders = parents(s, addrs, 0, c);
            let lines = last_col(children_named(s, orders, 0, c, "orderline"));
            Ok(lines.len())
        }
    }
}

fn tq14<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let date = color(s, "date");
            let dates = by_content(s, &p.date, "date", date)?;
            let orders = last_col(children_named(s, dates, 0, date, "order"));
            let lines = last_col(children_named(s, orders, 0, date, "orderline"));
            Ok(lines.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let dates = by_content(s, &p.date, "date", c)?;
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("dateIdRef".into()),
                &dates, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("orderIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j2.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            // Dates are replicated leaf children of orders.
            let dates = by_content(s, &p.date, "date", c)?;
            let orders = parents(s, dates, 0, c);
            let lines = last_col(children_named(s, orders, 0, c, "orderline"));
            Ok(lines.len())
        }
    }
}

fn tq15<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let bill = color(s, "bill");
            let countries = by_content(s, &p.country, "country", bill)?;
            let addrs = parents(s, countries, 0, bill);
            let orders = last_col(children_named(s, addrs, 0, bill, "order"));
            let lines = last_col(children_named(s, orders, 0, bill, "orderline"));
            Ok(lines.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let countries = by_content(s, &p.country, "country", c)?;
            let addrs = parents(s, countries, 0, c);
            let orders = index_scan(s, c, "order")?;
            let j1 = value_join_eq(
                s, &orders, 0, &KeySpec::Attr("billAddrIdRef".into()),
                &addrs, 0, &KeySpec::Attr("id".into()),
            )?;
            let lines = index_scan(s, c, "orderline")?;
            let j2 = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("orderIdRef".into()),
                &j1, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j2.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            // country element wraps a name leaf in deep.
            let names = by_content(s, &p.country, "name", c)?;
            let countries: Vec<Tuple> = parents(s, names, 0, c)
                .into_iter()
                .filter(|t| s.db.name_str(t[0].node) == Some("country"))
                .collect();
            let addrs = parents(s, countries, 0, c);
            let addrs = select_attr_eq(s, addrs, 0, "role", "billing")?;
            let orders = parents(s, addrs, 0, c);
            let lines = last_col(children_named(s, orders, 0, c, "orderline"));
            Ok(lines.len())
        }
    }
}

fn tq16<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let auth = color(s, "auth");
            let costs = index_scan(s, auth, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_very_hi))?;
            let items = parents(s, hot, 0, auth);
            // Group: one result row per qualifying item.
            let mut groups = 0;
            for t in items {
                let _lines = s.db.children(t[0].node, auth).count();
                groups += 1;
            }
            Ok(groups)
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let costs = index_scan(s, c, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_very_hi))?;
            let items = parents(s, hot, 0, c);
            let lines = index_scan(s, c, "orderline")?;
            let _joined = value_join_eq(
                s, &lines, 0, &KeySpec::Attr("itemIdRef".into()),
                &items, 0, &KeySpec::Attr("id".into()),
            )?;
            // One group per qualifying item (empty groups included).
            let mut groups = std::collections::HashSet::new();
            for t in &items {
                groups.insert(t[0].node);
            }
            Ok(groups.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            // Duplicate intermediates: every qualifying item REPLICA.
            let costs = index_scan(s, c, "cost")?;
            let hot = select_number_cmp(s, costs, 0, NumCmp::Gt, f64::from(p.cost_very_hi))?;
            let replicas = parents(s, hot, 0, c);
            let replicas: Vec<Tuple> = replicas
                .into_iter()
                .filter(|t| s.db.name_str(t[0].node) == Some("item"))
                .collect();
            // Group by itemkey attribute (inherent dup-elim, §7.2's
            // note on TQ16: no D variant is possible).
            let mut groups = std::collections::HashSet::new();
            for t in &replicas {
                let attrs = s.fetch_attrs(t[0].node)?;
                if let Some((_, v)) = attrs.iter().find(|(n, _)| n == "itemkey") {
                    groups.insert(v.clone());
                }
            }
            Ok(groups.len())
        }
    }
}

// ---------------------------------------------------------------------------
// SIGMOD-Record reads
// ---------------------------------------------------------------------------

fn sq1<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "date"),
        _ => color(s, "black"),
    };
    let titles = by_content(s, &p.article_title, "title", c)?;
    Ok(parents(s, titles, 0, c).len())
}

fn sq2<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct | SchemaKind::Deep => {
            let c = match schema {
                SchemaKind::Mct => color(s, "date"),
                _ => color(s, "black"),
            };
            let issues = index_scan(s, c, "issue")?;
            let issues = select_attr_eq(s, issues, 0, "volume", &p.volume.to_string())?;
            let issues = select_attr_eq(s, issues, 0, "number", &p.number.to_string())?;
            let articles = last_col(children_named(s, issues, 0, c, "article"));
            Ok(articles.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let issues = index_scan(s, c, "issue")?;
            let issues = select_attr_eq(s, issues, 0, "volume", &p.volume.to_string())?;
            let issues = select_attr_eq(s, issues, 0, "number", &p.number.to_string())?;
            let articles = index_scan(s, c, "article")?;
            let j = value_join_eq(
                s, &articles, 0, &KeySpec::Attr("issueIdRef".into()),
                &issues, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j.len())
        }
    }
}

fn sq3<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct | SchemaKind::Deep => {
            let c = match schema {
                SchemaKind::Mct => color(s, "date"),
                _ => color(s, "black"),
            };
            let dates = index_scan(s, c, "date")?;
            let dates = select_contains(s, dates, 0, &p.year)?;
            let issues = last_col(children_named(s, dates, 0, c, "issue"));
            let articles = last_col(children_named(s, issues, 0, c, "article"));
            Ok(articles.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let dates = index_scan(s, c, "date")?;
            let dates = select_contains(s, dates, 0, &p.year)?;
            let issues = last_col(children_named(s, dates, 0, c, "issue"));
            let articles = index_scan(s, c, "article")?;
            let j = value_join_eq(
                s, &articles, 0, &KeySpec::Attr("issueIdRef".into()),
                &issues, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j.len())
        }
    }
}

fn sq4<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, dedup: bool) -> R<usize> {
    let c = match schema {
        SchemaKind::Mct => color(s, "editor"),
        _ => color(s, "black"),
    };
    let topics = index_scan(s, c, "topic")?;
    if dedup {
        distinct_by_content(s, topics)
    } else {
        Ok(topics.len())
    }
}

fn sq5<D: DiskManager>(s: &mut StoredDb<D>, schema: SchemaKind, p: &Params) -> R<usize> {
    match schema {
        SchemaKind::Mct => {
            let c = color(s, "editor");
            let topics = by_content(s, &p.topic, "topic", c)?;
            let articles = last_col(children_named(s, topics, 0, c, "article"));
            Ok(articles.len())
        }
        SchemaKind::Shallow => {
            let c = color(s, "black");
            let topics = by_content(s, &p.topic, "topic", c)?;
            let articles = index_scan(s, c, "article")?;
            let j = value_join_eq(
                s, &articles, 0, &KeySpec::Attr("topicIdRef".into()),
                &topics, 0, &KeySpec::Attr("id".into()),
            )?;
            Ok(j.len())
        }
        SchemaKind::Deep => {
            let c = color(s, "black");
            // Replicated topics; one parent article per replica.
            let topics = by_content(s, &p.topic, "topic", c)?;
            let articles = parents(s, topics, 0, c);
            Ok(articles.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{all_queries, QueryKind};
    use crate::sigmod::{SigmodConfig, SigmodData};
    use crate::tpcw::{TpcwConfig, TpcwData};
    use mct_core::MctDatabase;

    struct Fixture {
        p: Params,
        tpcw: [StoredDb; 3],
        sigmod: [StoredDb; 3],
    }

    fn build(db: MctDatabase) -> StoredDb {
        StoredDb::build(db, 64 * 1024 * 1024).unwrap()
    }

    fn fixture() -> Fixture {
        let t = TpcwData::generate(&TpcwConfig { scale: 0.03, seed: 11 });
        let g = SigmodData::generate(&SigmodConfig { scale: 0.05, seed: 11 });
        let p = Params::derive(&t, &g);
        Fixture {
            p,
            tpcw: [
                build(t.build_mct()),
                build(t.build_shallow()),
                build(t.build_deep()),
            ],
            sigmod: [
                build(g.build_mct()),
                build(g.build_shallow()),
                build(g.build_deep()),
            ],
        }
    }

    /// The central correctness property: every read query returns the
    /// SAME result cardinality on all three designs (with dup-elim on).
    #[test]
    fn all_reads_agree_across_schemas() {
        let mut f = fixture();
        for wq in all_queries(&f.p) {
            if wq.kind != QueryKind::Read {
                continue;
            }
            let dbs = match wq.dataset {
                crate::queries::Dataset::Tpcw => &mut f.tpcw,
                crate::queries::Dataset::Sigmod => &mut f.sigmod,
            };
            let mut counts = Vec::new();
            for (i, schema) in SchemaKind::ALL.iter().enumerate() {
                let out = run_read(&mut dbs[i], wq.id, *schema, &f.p, true).unwrap();
                counts.push(out.results);
            }
            assert!(
                counts[0] == counts[1] && counts[1] == counts[2],
                "{}: MCT={} shallow={} deep={}",
                wq.id,
                counts[0],
                counts[1],
                counts[2]
            );
        }
    }

    #[test]
    fn dup_variants_inflate_deep_only() {
        let mut f = fixture();
        for wq in all_queries(&f.p) {
            if wq.kind != QueryKind::Read || !wq.deep_dups {
                continue;
            }
            let dbs = match wq.dataset {
                crate::queries::Dataset::Tpcw => &mut f.tpcw,
                crate::queries::Dataset::Sigmod => &mut f.sigmod,
            };
            let with = run_read(&mut dbs[2], wq.id, SchemaKind::Deep, &f.p, true)
                .unwrap()
                .results;
            let without = run_read(&mut dbs[2], wq.id, SchemaKind::Deep, &f.p, false)
                .unwrap()
                .results;
            assert!(
                without >= with,
                "{}: D variant must not shrink ({without} < {with})",
                wq.id
            );
            if wq.id == "TQ7" || wq.id == "SQ4" {
                assert!(
                    without > with,
                    "{}: deep must actually produce duplicates",
                    wq.id
                );
            }
        }
    }

    #[test]
    fn updates_touch_more_elements_on_deep() {
        let mut f = fixture();
        for wq in all_queries(&f.p) {
            if wq.kind != QueryKind::Update || !wq.deep_dups {
                continue;
            }
            let dbs = match wq.dataset {
                crate::queries::Dataset::Tpcw => &mut f.tpcw,
                crate::queries::Dataset::Sigmod => &mut f.sigmod,
            };
            let mct = run_update(&mut dbs[0], &wq, SchemaKind::Mct).unwrap();
            let deep = run_update(&mut dbs[2], &wq, SchemaKind::Deep).unwrap();
            assert!(
                deep.updated > mct.updated,
                "{}: deep updated {} !> mct {} — the update anomaly",
                wq.id,
                deep.updated,
                mct.updated
            );
        }
    }

    #[test]
    fn nonzero_results_where_expected() {
        let mut f = fixture();
        for wq in all_queries(&f.p) {
            if wq.kind != QueryKind::Read {
                continue;
            }
            let dbs = match wq.dataset {
                crate::queries::Dataset::Tpcw => &mut f.tpcw,
                crate::queries::Dataset::Sigmod => &mut f.sigmod,
            };
            let out = run_read(&mut dbs[0], wq.id, SchemaKind::Mct, &f.p, true).unwrap();
            assert!(out.results > 0, "{} returned nothing", wq.id);
        }
    }
}
