//! The benchmark query workloads (§7, Table 2).
//!
//! The paper never published its XBench-derived query texts (footnote
//! 5 promised a website), so we author queries that reproduce every
//! *annotation* Table 2 gives: the number of colors an MCT plan
//! touches, the number of trees (= value joins) a shallow plan needs,
//! which queries make deep produce duplicates (the `*D` no-dup-elim
//! variants), and the relative result cardinalities.
//!
//! Every query carries its MCXQuery / shallow-XQuery / deep-XQuery
//! text; the texts are parsed by `mct-query` and measured for the
//! Figure 11/12 complexity metrics. Execution uses the hand-written
//! physical plans in [`crate::plans`], as the paper did.

use crate::sigmod::SigmodData;
use crate::tpcw::TpcwData;

/// Which generated data set a query runs against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dataset {
    /// TPC-W-style data.
    Tpcw,
    /// SIGMOD-Record-style data.
    Sigmod,
}

/// Which of the three database designs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SchemaKind {
    /// Multi-colored trees.
    Mct,
    /// Flat trees + IDREF attributes.
    Shallow,
    /// Fully nested with replication.
    Deep,
}

impl SchemaKind {
    /// All three designs in the paper's column order.
    pub const ALL: [SchemaKind; 3] = [SchemaKind::Mct, SchemaKind::Shallow, SchemaKind::Deep];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            SchemaKind::Mct => "MCT",
            SchemaKind::Shallow => "Shallow",
            SchemaKind::Deep => "Deep",
        }
    }
}

/// Parameters extracted (deterministically) from the generated data so
/// every query has sensible selectivity.
#[derive(Clone, Debug)]
pub struct Params {
    /// A customer login (point lookups).
    pub uname: String,
    /// A customer display name.
    pub cust_name: String,
    /// Order-total threshold (medium selectivity).
    pub total_hi: u32,
    /// An order-line quantity (medium).
    pub qty: u32,
    /// An order status value (large scan).
    pub status: String,
    /// Item-cost threshold (for TQ9; ~half the items).
    pub cost_hi: u32,
    /// Item-cost threshold (for TQ16; few items).
    pub cost_very_hi: u32,
    /// An author name (small driver).
    pub author: String,
    /// A second author name (used by TU4, independent of TU1's rename).
    pub author2: String,
    /// A city (medium driver).
    pub city: String,
    /// A country name.
    pub country: String,
    /// A date value.
    pub date: String,
    /// An item title (point updates).
    pub item_title: String,
    // SIGMOD-Record parameters.
    /// An article title.
    pub article_title: String,
    /// An issue volume.
    pub volume: u32,
    /// An issue number.
    pub number: u32,
    /// A year prefix, e.g. "1978".
    pub year: String,
    /// A topic name.
    pub topic: String,
    /// An editor name.
    pub editor: String,
}

impl Params {
    /// Derive parameters from both data sets.
    pub fn derive(tpcw: &TpcwData, sigmod: &SigmodData) -> Params {
        let mid_issue = &sigmod.issues[sigmod.issues.len() / 2];
        Params {
            // A customer guaranteed to have at least one order.
            uname: tpcw.customers[tpcw.orders[0].customer].uname.clone(),
            cust_name: tpcw.customers[tpcw.orders[0].customer].name.clone(),
            total_hi: 70_000,
            qty: 3,
            status: "SHIPPED".to_string(),
            cost_hi: 10_000,
            // ~95th percentile of actual item costs (capped below the
            // max so a strict > comparison always matches something).
            cost_very_hi: {
                let mut costs: Vec<u32> = tpcw.items.iter().map(|i| i.cost).collect();
                costs.sort_unstable();
                let max = *costs.last().expect("tpcw data has items");
                costs[costs.len() - 1 - costs.len() / 20].min(max.saturating_sub(1))
            },
            author: tpcw.authors[0].name.clone(),
            author2: tpcw.authors[1].name.clone(),
            city: tpcw.addresses[0].city.clone(),
            country: tpcw.countries
                [tpcw.addresses[tpcw.orders[0].bill_addr].country]
                .name
                .clone(),
            date: tpcw.dates[tpcw.orders[0].date].clone(),
            item_title: tpcw.items[1].title.clone(),
            article_title: sigmod.articles[2].title.clone(),
            volume: mid_issue.volume,
            number: mid_issue.number,
            year: sigmod.dates[sigmod.dates.len() / 2][..4].to_string(),
            topic: sigmod.topics[2].name.clone(),
            editor: sigmod.editors[1].clone(),
        }
    }
}

/// Whether a workload entry is a read query or an update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// Read-only query.
    Read,
    /// Update statement.
    Update,
}

/// One benchmark query with its three texts and Table-2 annotations.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// Identifier (TQ1..TQ16, TU1..TU4, SQ1..SQ5, SU1..SU2).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Data set.
    pub dataset: Dataset,
    /// Read or update.
    pub kind: QueryKind,
    /// Colors the MCT plan touches (Table 2 "Colors").
    pub colors: u32,
    /// Trees involved for shallow (Table 2 "Trees"; value joins = trees−1).
    pub trees: u32,
    /// Deep produces duplicates, so a `*D` no-dup-elim variant exists.
    pub deep_dups: bool,
    /// MCXQuery text.
    pub mct_text: String,
    /// Shallow XQuery text (single color `black`).
    pub shallow_text: String,
    /// Deep XQuery text (single color `black`).
    pub deep_text: String,
}

/// Build the full workload (TPC-W + SIGMOD-Record, reads + updates).
pub fn all_queries(p: &Params) -> Vec<WorkloadQuery> {
    let mut v = tpcw_reads(p);
    v.extend(tpcw_updates(p));
    v.extend(sigmod_reads(p));
    v.extend(sigmod_updates(p));
    v
}

#[allow(clippy::too_many_arguments)] // a row constructor for the table below
fn q(
    id: &'static str,
    description: &'static str,
    dataset: Dataset,
    kind: QueryKind,
    colors: u32,
    trees: u32,
    deep_dups: bool,
    mct: String,
    shallow: String,
    deep: String,
) -> WorkloadQuery {
    WorkloadQuery {
        id,
        description,
        dataset,
        kind,
        colors,
        trees,
        deep_dups,
        mct_text: mct,
        shallow_text: shallow,
        deep_text: deep,
    }
}

fn tpcw_reads(p: &Params) -> Vec<WorkloadQuery> {
    use Dataset::Tpcw;
    use QueryKind::Read;
    vec![
        q("TQ1", "name of the customer with a given login", Tpcw, Read, 1, 1, false,
            format!(r#"for $c in document("tpcw")/{{cust}}descendant::customer[{{cust}}child::uname = "{u}"] return $c/{{cust}}child::name"#, u = p.uname),
            format!(r#"for $c in document("tpcw")//customers/customer[uname = "{u}"] return $c/name"#, u = p.uname),
            format!(r#"for $c in document("tpcw")//customer[uname = "{u}"] return $c/name"#, u = p.uname)),
        q("TQ2", "orders with total above a threshold", Tpcw, Read, 1, 1, false,
            format!(r#"for $o in document("tpcw")/{{cust}}descendant::order[{{cust}}child::total > {t}] return $o"#, t = p.total_hi),
            format!(r#"for $o in document("tpcw")//orders/order[total > {t}] return $o"#, t = p.total_hi),
            format!(r#"for $o in document("tpcw")//order[total > {t}] return $o"#, t = p.total_hi)),
        q("TQ3", "titles of items ordered by a given customer", Tpcw, Read, 2, 4, false,
            format!(r#"for $i in document("tpcw")/{{cust}}descendant::customer[{{cust}}child::uname = "{u}"]/{{cust}}descendant::orderline/{{auth}}parent::item return $i/{{auth}}child::title"#, u = p.uname),
            format!(r#"for $c in document("tpcw")//customers/customer[uname = "{u}"], $o in document("tpcw")//orders/order, $l in document("tpcw")//orderlines/orderline, $i in document("tpcw")//items/item where $o/@customerIdRef = $c/@id and $l/@orderIdRef = $o/@id and $l/@itemIdRef = $i/@id return $i/title"#, u = p.uname),
            format!(r#"for $i in document("tpcw")//customer[uname = "{u}"]//orderline/item return $i/title"#, u = p.uname)),
        q("TQ4", "order lines with a given quantity", Tpcw, Read, 1, 1, false,
            format!(r#"for $l in document("tpcw")/{{cust}}descendant::orderline[{{cust}}child::qty = {n}] return $l"#, n = p.qty),
            format!(r#"for $l in document("tpcw")//orderlines/orderline[qty = {n}] return $l"#, n = p.qty),
            format!(r#"for $l in document("tpcw")//orderline[qty = {n}] return $l"#, n = p.qty)),
        q("TQ5", "customer with a given display name", Tpcw, Read, 1, 1, false,
            format!(r#"for $c in document("tpcw")/{{cust}}descendant::customer[{{cust}}child::name = "{n}"] return $c"#, n = p.cust_name),
            format!(r#"for $c in document("tpcw")//customers/customer[name = "{n}"] return $c"#, n = p.cust_name),
            format!(r#"for $c in document("tpcw")//customer[name = "{n}"] return $c"#, n = p.cust_name)),
        q("TQ6", "all orders with a given status", Tpcw, Read, 1, 1, false,
            format!(r#"for $o in document("tpcw")/{{cust}}descendant::order[{{cust}}child::status = "{s}"] return $o"#, s = p.status),
            format!(r#"for $o in document("tpcw")//orders/order[status = "{s}"] return $o"#, s = p.status),
            format!(r#"for $o in document("tpcw")//order[status = "{s}"] return $o"#, s = p.status)),
        q("TQ7", "distinct author names", Tpcw, Read, 1, 1, true,
            r#"for $n in distinct-values(document("tpcw")/{auth}descendant::author/{auth}child::name) return $n"#.to_string(),
            r#"for $n in distinct-values(document("tpcw")//authors/author/name) return $n"#.to_string(),
            r#"for $n in distinct-values(document("tpcw")//author/name) return $n"#.to_string()),
        q("TQ8", "number of orders", Tpcw, Read, 1, 1, false,
            r#"count(document("tpcw")/{cust}descendant::order)"#.to_string(),
            r#"count(document("tpcw")//orders/order)"#.to_string(),
            r#"count(document("tpcw")//order)"#.to_string()),
        q("TQ9", "order lines of items above a cost threshold", Tpcw, Read, 1, 2, false,
            format!(r#"for $l in document("tpcw")/{{auth}}descendant::item[{{auth}}child::cost > {c}]/{{auth}}child::orderline return $l"#, c = p.cost_hi),
            format!(r#"for $i in document("tpcw")//items/item[cost > {c}], $l in document("tpcw")//orderlines/orderline where $l/@itemIdRef = $i/@id return $l"#, c = p.cost_hi),
            format!(r#"for $l in document("tpcw")//orderline[item/cost > {c}] return $l"#, c = p.cost_hi)),
        q("TQ10", "authors of items ordered by customers shipping to a city", Tpcw, Read, 2, 5, false,
            format!(r#"for $a in document("tpcw")/{{ship}}descendant::address[{{ship}}child::city = "{c}"]/{{ship}}descendant::orderline/{{auth}}parent::item/{{auth}}parent::author return $a"#, c = p.city),
            format!(r#"for $ad in document("tpcw")//addresses/address[city = "{c}"], $o in document("tpcw")//orders/order, $l in document("tpcw")//orderlines/orderline, $i in document("tpcw")//items/item, $au in document("tpcw")//authors/author where $o/@shipAddrIdRef = $ad/@id and $l/@orderIdRef = $o/@id and $l/@itemIdRef = $i/@id and $i/@authorIdRef = $au/@id return $au"#, c = p.city),
            format!(r#"for $a in document("tpcw")//order[address[city = "{c}"]]//orderline/item/author return $a"#, c = p.city)),
        q("TQ11", "order lines of a given author's items", Tpcw, Read, 1, 3, false,
            format!(r#"for $l in document("tpcw")/{{auth}}descendant::author[{{auth}}child::name = "{a}"]/{{auth}}descendant::orderline return $l"#, a = p.author),
            format!(r#"for $au in document("tpcw")//authors/author[name = "{a}"], $i in document("tpcw")//items/item, $l in document("tpcw")//orderlines/orderline where $i/@authorIdRef = $au/@id and $l/@itemIdRef = $i/@id return $l"#, a = p.author),
            format!(r#"for $l in document("tpcw")//orderline[item/author/name = "{a}"] return $l"#, a = p.author)),
        q("TQ12", "shipping countries of a customer's orders", Tpcw, Read, 2, 3, true,
            format!(r#"for $co in document("tpcw")/{{cust}}descendant::customer[{{cust}}child::uname = "{u}"]/{{cust}}child::order/{{ship}}parent::address/{{ship}}child::country return distinct-values($co)"#, u = p.uname),
            format!(r#"for $c in document("tpcw")//customers/customer[uname = "{u}"], $o in document("tpcw")//orders/order, $ad in document("tpcw")//addresses/address where $o/@customerIdRef = $c/@id and $o/@shipAddrIdRef = $ad/@id return distinct-values($ad/country)"#, u = p.uname),
            format!(r#"for $co in distinct-values(document("tpcw")//customer[uname = "{u}"]/order/address[@role = "shipping"]/country/name) return $co"#, u = p.uname)),
        q("TQ13", "order lines of orders shipped to a city", Tpcw, Read, 1, 3, false,
            format!(r#"for $l in document("tpcw")/{{ship}}descendant::address[{{ship}}child::city = "{c}"]/{{ship}}child::order/{{ship}}child::orderline return $l"#, c = p.city),
            format!(r#"for $ad in document("tpcw")//addresses/address[city = "{c}"], $o in document("tpcw")//orders/order, $l in document("tpcw")//orderlines/orderline where $o/@shipAddrIdRef = $ad/@id and $l/@orderIdRef = $o/@id return $l"#, c = p.city),
            format!(r#"for $l in document("tpcw")//order[address[@role = "shipping"]/city = "{c}"]/orderline return $l"#, c = p.city)),
        q("TQ14", "order lines of orders placed on a date", Tpcw, Read, 1, 3, false,
            format!(r#"for $l in document("tpcw")/{{date}}descendant::date[. = "{d}"]/{{date}}child::order/{{date}}child::orderline return $l"#, d = p.date),
            format!(r#"for $dt in document("tpcw")//dates/date[. = "{d}"], $o in document("tpcw")//orders/order, $l in document("tpcw")//orderlines/orderline where $o/@dateIdRef = $dt/@id and $l/@orderIdRef = $o/@id return $l"#, d = p.date),
            format!(r#"for $l in document("tpcw")//order[date = "{d}"]/orderline return $l"#, d = p.date)),
        q("TQ15", "order lines of orders billed in a country", Tpcw, Read, 1, 3, false,
            format!(r#"for $l in document("tpcw")/{{bill}}descendant::address[{{bill}}child::country = "{c}"]/{{bill}}child::order/{{bill}}child::orderline return $l"#, c = p.country),
            format!(r#"for $ad in document("tpcw")//addresses/address[country = "{c}"], $o in document("tpcw")//orders/order, $l in document("tpcw")//orderlines/orderline where $o/@billAddrIdRef = $ad/@id and $l/@orderIdRef = $o/@id return $l"#, c = p.country),
            format!(r#"for $l in document("tpcw")//order[address[@role = "billing"]/country/name = "{c}"]/orderline return $l"#, c = p.country)),
        q("TQ16", "expensive items grouped with their ordered quantities", Tpcw, Read, 1, 2, false,
            format!(r#"for $i in document("tpcw")/{{auth}}descendant::item[{{auth}}child::cost > {c}] return <group> {{ $i/{{auth}}child::title }} {{ count($i/{{auth}}child::orderline) }} </group>"#, c = p.cost_very_hi),
            format!(r#"for $i in document("tpcw")//items/item[cost > {c}] let $ls := document("tpcw")//orderlines/orderline[@itemIdRef = $i/@id] return <group> {{ $i/title }} {{ count($ls) }} </group>"#, c = p.cost_very_hi),
            format!(r#"for $t in distinct-values(document("tpcw")//orderline/item[cost > {c}]/title) return <group> {{ $t }} {{ count(document("tpcw")//orderline/item[title = $t]) }} </group>"#, c = p.cost_very_hi)),
    ]
}

fn tpcw_updates(p: &Params) -> Vec<WorkloadQuery> {
    use Dataset::Tpcw;
    use QueryKind::Update;
    vec![
        q("TU1", "rename an author", Tpcw, Update, 1, 1, true,
            format!(r#"for $a in document("tpcw")/{{auth}}descendant::author where $a/{{auth}}child::name = "{a}" update $a {{ replace value of $a/{{auth}}child::name with "Renamed Author" }}"#, a = p.author),
            format!(r#"for $a in document("tpcw")//authors/author where $a/name = "{a}" update $a {{ replace value of $a/name with "Renamed Author" }}"#, a = p.author),
            format!(r#"for $a in document("tpcw")//author where $a/name = "{a}" update $a {{ replace value of $a/name with "Renamed Author" }}"#, a = p.author)),
        q("TU2", "change an item's cost", Tpcw, Update, 1, 1, true,
            format!(r#"for $i in document("tpcw")/{{auth}}descendant::item where $i/{{auth}}child::title = "{t}" update $i {{ replace value of $i/{{auth}}child::cost with "9999" }}"#, t = p.item_title),
            format!(r#"for $i in document("tpcw")//items/item where $i/title = "{t}" update $i {{ replace value of $i/cost with "9999" }}"#, t = p.item_title),
            format!(r#"for $i in document("tpcw")//item where $i/title = "{t}" update $i {{ replace value of $i/cost with "9999" }}"#, t = p.item_title)),
        q("TU3", "mark orders shipped to a city as delivered", Tpcw, Update, 1, 3, false,
            format!(r#"for $o in document("tpcw")/{{ship}}descendant::address[{{ship}}child::city = "{c}"]/{{ship}}child::order update $o {{ replace value of $o/{{ship}}child::status with "DELIVERED" }}"#, c = p.city),
            format!(r#"for $ad in document("tpcw")//addresses/address[city = "{c}"], $o in document("tpcw")//orders/order where $o/@shipAddrIdRef = $ad/@id update $o {{ replace value of $o/status with "DELIVERED" }}"#, c = p.city),
            format!(r#"for $o in document("tpcw")//order[address[@role = "shipping"]/city = "{c}"] update $o {{ replace value of $o/status with "DELIVERED" }}"#, c = p.city)),
        q("TU4", "retitle a given author's items", Tpcw, Update, 1, 2, true,
            format!(r#"for $i in document("tpcw")/{{auth}}descendant::author[{{auth}}child::name = "{a}"]/{{auth}}child::item update $i {{ replace value of $i/{{auth}}child::title with "Retitled" }}"#, a = p.author2),
            format!(r#"for $au in document("tpcw")//authors/author[name = "{a}"], $i in document("tpcw")//items/item where $i/@authorIdRef = $au/@id update $i {{ replace value of $i/title with "Retitled" }}"#, a = p.author2),
            format!(r#"for $i in document("tpcw")//orderline/item[author/name = "{a}"] update $i {{ replace value of $i/title with "Retitled" }}"#, a = p.author2)),
    ]
}

fn sigmod_reads(p: &Params) -> Vec<WorkloadQuery> {
    use Dataset::Sigmod;
    use QueryKind::Read;
    vec![
        q("SQ1", "article with a given title", Sigmod, Read, 1, 1, false,
            format!(r#"for $a in document("sr")/{{date}}descendant::article[{{date}}child::title = "{t}"] return $a"#, t = p.article_title),
            format!(r#"for $a in document("sr")//articles/article[title = "{t}"] return $a"#, t = p.article_title),
            format!(r#"for $a in document("sr")//article[title = "{t}"] return $a"#, t = p.article_title)),
        q("SQ2", "articles in a given issue", Sigmod, Read, 1, 2, false,
            format!(r#"for $a in document("sr")/{{date}}descendant::issue[@volume = "{v}"][@number = "{n}"]/{{date}}child::article return $a"#, v = p.volume, n = p.number),
            format!(r#"for $i in document("sr")//calendar/date/issue[@volume = "{v}"][@number = "{n}"], $a in document("sr")//articles/article where $a/@issueIdRef = $i/@id return $a"#, v = p.volume, n = p.number),
            format!(r#"for $a in document("sr")//issue[@volume = "{v}"][@number = "{n}"]/article return $a"#, v = p.volume, n = p.number)),
        q("SQ3", "articles published in a given year", Sigmod, Read, 1, 2, false,
            format!(r#"for $a in document("sr")/{{date}}descendant::date[contains(., "{y}")]/{{date}}descendant::article return $a"#, y = p.year),
            format!(r#"for $i in document("sr")//calendar/date[contains(., "{y}")]/issue, $a in document("sr")//articles/article where $a/@issueIdRef = $i/@id return $a"#, y = p.year),
            format!(r#"for $a in document("sr")//date[contains(., "{y}")]//article return $a"#, y = p.year)),
        q("SQ4", "distinct topics", Sigmod, Read, 1, 1, true,
            r#"for $t in distinct-values(document("sr")/{editor}descendant::topic) return $t"#.to_string(),
            r#"for $t in distinct-values(document("sr")//editorial/editor/topic) return $t"#.to_string(),
            r#"for $t in distinct-values(document("sr")//article/topic) return $t"#.to_string()),
        q("SQ5", "articles on a given topic", Sigmod, Read, 1, 2, false,
            format!(r#"for $a in document("sr")/{{editor}}descendant::topic[. = "{t}"]/{{editor}}child::article return $a"#, t = p.topic),
            format!(r#"for $tp in document("sr")//editorial/editor/topic[. = "{t}"], $a in document("sr")//articles/article where $a/@topicIdRef = $tp/@id return $a"#, t = p.topic),
            format!(r#"for $a in document("sr")//article[topic = "{t}"] return $a"#, t = p.topic)),
    ]
}

fn sigmod_updates(p: &Params) -> Vec<WorkloadQuery> {
    use Dataset::Sigmod;
    use QueryKind::Update;
    vec![
        q("SU1", "rename a topic", Sigmod, Update, 1, 1, true,
            format!(r#"for $t in document("sr")/{{editor}}descendant::topic where $t = "{t}" update $t {{ replace value of $t with "Renamed Topic" }}"#, t = p.topic),
            format!(r#"for $t in document("sr")//editorial/editor/topic where $t = "{t}" update $t {{ replace value of $t with "Renamed Topic" }}"#, t = p.topic),
            format!(r#"for $t in document("sr")//article/topic where $t = "{t}" update $t {{ replace value of $t with "Renamed Topic" }}"#, t = p.topic)),
        q("SU2", "rename an editor", Sigmod, Update, 1, 1, true,
            format!(r#"for $e in document("sr")/{{editor}}descendant::editor where $e = "{e}" update $e {{ replace value of $e with "Renamed Editor" }}"#, e = p.editor),
            format!(r#"for $e in document("sr")//editorial/editor where $e = "{e}" update $e {{ replace value of $e with "Renamed Editor" }}"#, e = p.editor),
            format!(r#"for $e in document("sr")//article/topic/editor where $e = "{e}" update $e {{ replace value of $e with "Renamed Editor" }}"#, e = p.editor)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigmod::SigmodConfig;
    use crate::tpcw::TpcwConfig;
    use mct_query::{complexity, parse_query, parse_update, update_complexity, Complexity};

    fn params() -> Params {
        let t = TpcwData::generate(&TpcwConfig { scale: 0.02, seed: 1 });
        let s = SigmodData::generate(&SigmodConfig { scale: 0.05, seed: 1 });
        Params::derive(&t, &s)
    }

    #[test]
    fn workload_is_complete() {
        let qs = all_queries(&params());
        assert_eq!(qs.len(), 27, "16 TQ + 4 TU + 5 SQ + 2 SU");
        assert_eq!(qs.iter().filter(|q| q.kind == QueryKind::Update).count(), 6);
        assert_eq!(qs.iter().filter(|q| q.deep_dups).count(), 8);
    }

    #[test]
    fn every_text_parses() {
        for wq in all_queries(&params()) {
            for (kind, text) in [
                ("mct", &wq.mct_text),
                ("shallow", &wq.shallow_text),
                ("deep", &wq.deep_text),
            ] {
                let ok = match wq.kind {
                    QueryKind::Read => parse_query(text).map(|_| ()).map_err(|e| e.to_string()),
                    QueryKind::Update => parse_update(text).map(|_| ()).map_err(|e| e.to_string()),
                };
                ok.unwrap_or_else(|e| panic!("{} {kind} failed to parse: {e}\n{text}", wq.id));
            }
        }
    }

    fn measure(wq: &WorkloadQuery, text: &str) -> Complexity {
        match wq.kind {
            QueryKind::Read => complexity(&parse_query(text).unwrap()),
            QueryKind::Update => update_complexity(&parse_update(text).unwrap()),
        }
    }

    #[test]
    fn shallow_queries_are_more_complex_where_joins_exist() {
        // The Figure 11/12 claim: shallow needs more variable bindings
        // (and usually more path expressions) than MCT exactly on the
        // multi-tree queries.
        for wq in all_queries(&params()) {
            let m = measure(&wq, &wq.mct_text);
            let s = measure(&wq, &wq.shallow_text);
            if wq.trees > 1 {
                assert!(
                    s.var_bindings > m.var_bindings,
                    "{}: shallow bindings {} !> mct {}",
                    wq.id,
                    s.var_bindings,
                    m.var_bindings
                );
                assert!(
                    s.path_exprs >= m.path_exprs,
                    "{}: shallow paths {} < mct {}",
                    wq.id,
                    s.path_exprs,
                    m.path_exprs
                );
            } else {
                assert_eq!(s.var_bindings, m.var_bindings, "{}", wq.id);
            }
        }
    }

    #[test]
    fn mct_and_deep_have_comparable_complexity() {
        // Paper §7.3: "MCT and deep are comparable".
        for wq in all_queries(&params()) {
            let m = measure(&wq, &wq.mct_text);
            let d = measure(&wq, &wq.deep_text);
            assert!(
                (m.var_bindings as i64 - d.var_bindings as i64).abs() <= 1,
                "{}: mct {:?} vs deep {:?}",
                wq.id,
                m,
                d
            );
        }
    }

    /// parse(display(parse(text))) == parse(text) for EVERY workload
    /// query in every dialect — the unparser round trip.
    #[test]
    fn unparse_roundtrips_every_query() {
        for wq in all_queries(&params()) {
            for text in [&wq.mct_text, &wq.shallow_text, &wq.deep_text] {
                match wq.kind {
                    QueryKind::Read => {
                        let e1 = parse_query(text).unwrap();
                        let printed = e1.to_string();
                        let e2 = parse_query(&printed)
                            .unwrap_or_else(|err| panic!("{}: reparse failed: {err}\n{printed}", wq.id));
                        assert_eq!(e1, e2, "{}: {printed}", wq.id);
                    }
                    QueryKind::Update => {
                        let u1 = parse_update(text).unwrap();
                        let printed = u1.to_string();
                        let u2 = parse_update(&printed)
                            .unwrap_or_else(|err| panic!("{}: reparse failed: {err}\n{printed}", wq.id));
                        assert_eq!(u1, u2, "{}: {printed}", wq.id);
                    }
                }
            }
        }
    }

    #[test]
    fn params_are_deterministic() {
        let a = params();
        let b = params();
        assert_eq!(a.uname, b.uname);
        assert_eq!(a.article_title, b.article_title);
    }
}
