//! Parser for the MCXQuery subset.
//!
//! A character-level recursive-descent parser covering: FLWOR
//! expressions, color-decorated path expressions in unabbreviated
//! (`{red}descendant::movie`) and abbreviated (`/{red}movie`,
//! `//movie`, `@attr`) syntax, general comparisons, `and`/`or`,
//! function calls (`contains`, `count`, `distinct-values`,
//! `createColor`, `createCopy`, ...), element constructors with
//! enclosed expressions, and Tatarinov-style update statements
//! (`for ... where ... update $v { delete ..., insert ..., replace
//! value of ... with ... }`).

use crate::ast::*;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Description of what went wrong.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MCXQuery parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

type PResult<T> = Result<T, QueryParseError>;

/// Parse a query expression.
pub fn parse_query(input: &str) -> PResult<Expr> {
    let mut p = P::new(input);
    let e = p.expr()?;
    p.ws();
    if !p.eof() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

/// Parse an update statement.
pub fn parse_update(input: &str) -> PResult<UpdateStmt> {
    let mut p = P::new(input);
    let u = p.update_stmt()?;
    p.ws();
    if !p.eof() {
        return Err(p.err("trailing input after update statement"));
    }
    Ok(u)
}

struct P<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> Self {
        P { b: s.as_bytes(), at: 0 }
    }

    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            message: m.into(),
            offset: self.at,
        }
    }

    fn eof(&self) -> bool {
        self.at >= self.b.len()
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.b.get(self.at + 1).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.b[self.at..].starts_with(s.as_bytes()) {
            self.at += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> PResult<()> {
        if self.lit(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Match a keyword at a word boundary.
    fn kw(&mut self, w: &str) -> bool {
        self.ws();
        if self.b[self.at..].starts_with(w.as_bytes()) {
            let after = self.b.get(self.at + w.len()).copied();
            if !matches!(after, Some(c) if is_name_char(c)) {
                self.at += w.len();
                return true;
            }
        }
        false
    }

    fn peek_kw(&mut self, w: &str) -> bool {
        let save = self.at;
        let hit = self.kw(w);
        self.at = save;
        hit
    }

    fn name(&mut self) -> PResult<String> {
        self.ws();
        let start = self.at;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.at += 1,
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.at += 1;
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.at]).into_owned())
    }

    fn string_lit(&mut self) -> PResult<String> {
        self.ws();
        let q = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected string literal")),
        };
        self.at += 1;
        let start = self.at;
        while let Some(c) = self.peek() {
            if c == q {
                let s = String::from_utf8_lossy(&self.b[start..self.at]).into_owned();
                self.at += 1;
                return Ok(s);
            }
            self.at += 1;
        }
        Err(self.err("unterminated string literal"))
    }

    fn var(&mut self) -> PResult<String> {
        self.ws();
        self.expect("$")?;
        self.name()
    }

    // ----- expressions --------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.ws();
        if self.peek_kw("for") || self.peek_kw("let") {
            // Could be FLWOR or update; look ahead for `update`.
            let save = self.at;
            match self.flwor_or_update()? {
                FlworOrUpdate::Flwor(f) => Ok(Expr::Flwor(f)),
                FlworOrUpdate::Update(_) => {
                    self.at = save;
                    Err(self.err("update statement where expression expected (use parse_update)"))
                }
            }
        } else {
            self.or_expr()
        }
    }

    fn update_stmt(&mut self) -> PResult<UpdateStmt> {
        match self.flwor_or_update()? {
            FlworOrUpdate::Update(u) => Ok(u),
            FlworOrUpdate::Flwor(_) => Err(self.err("expected an update statement")),
        }
    }

    fn clauses(&mut self) -> PResult<Vec<FlworClause>> {
        let mut clauses = Vec::new();
        loop {
            if self.kw("for") {
                loop {
                    let v = self.var()?;
                    self.ws();
                    if !self.kw("in") {
                        return Err(self.err("expected `in`"));
                    }
                    let e = self.or_expr()?;
                    clauses.push(FlworClause::For(v, e));
                    self.ws();
                    if !self.lit(",") {
                        break;
                    }
                }
            } else if self.kw("let") {
                loop {
                    let v = self.var()?;
                    self.ws();
                    self.expect(":=")?;
                    let e = self.or_expr()?;
                    clauses.push(FlworClause::Let(v, e));
                    self.ws();
                    if !self.lit(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if clauses.is_empty() {
            return Err(self.err("expected for/let clause"));
        }
        Ok(clauses)
    }

    fn flwor_or_update(&mut self) -> PResult<FlworOrUpdate> {
        let clauses = self.clauses()?;
        let where_ = if self.kw("where") {
            Some(Box::new(self.or_expr()?))
        } else {
            None
        };
        if self.kw("update") {
            let target = self.var()?;
            self.ws();
            self.expect("{")?;
            let mut actions = vec![self.action()?];
            self.ws();
            while self.lit(",") {
                actions.push(self.action()?);
                self.ws();
            }
            self.expect("}")?;
            return Ok(FlworOrUpdate::Update(UpdateStmt {
                clauses,
                where_,
                target,
                actions,
            }));
        }
        let mut order_by = Vec::new();
        if self.kw("order") {
            if !self.kw("by") {
                return Err(self.err("expected `by` after `order`"));
            }
            loop {
                let k = self.or_expr()?;
                let asc = if self.kw("descending") {
                    false
                } else {
                    let _ = self.kw("ascending");
                    true
                };
                order_by.push((k, asc));
                self.ws();
                if !self.lit(",") {
                    break;
                }
            }
        }
        if !self.kw("return") {
            return Err(self.err("expected `return`"));
        }
        let ret = Box::new(self.expr()?);
        Ok(FlworOrUpdate::Flwor(Flwor {
            clauses,
            where_,
            order_by,
            ret,
        }))
    }

    fn action(&mut self) -> PResult<UpdateAction> {
        if self.kw("delete") {
            Ok(UpdateAction::Delete(self.or_expr()?))
        } else if self.kw("insert") {
            Ok(UpdateAction::Insert(self.or_expr()?))
        } else if self.kw("replace") {
            if !self.kw("value") || !self.kw("of") {
                return Err(self.err("expected `value of` after `replace`"));
            }
            let target = self.or_expr()?;
            if !self.kw("with") {
                return Err(self.err("expected `with`"));
            }
            let v = self.or_expr()?;
            Ok(UpdateAction::ReplaceValue(target, v))
        } else {
            Err(self.err("expected delete/insert/replace action"))
        }
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut l = self.and_expr()?;
        while self.kw("or") {
            let r = self.and_expr()?;
            l = Expr::Or(Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut l = self.cmp_expr()?;
        while self.kw("and") {
            let r = self.cmp_expr()?;
            l = Expr::And(Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let l = self.path_expr()?;
        self.ws();
        let op = if self.lit("!=") {
            Some(CmpOp::Ne)
        } else if self.lit("<=") {
            Some(CmpOp::Le)
        } else if self.lit(">=") {
            Some(CmpOp::Ge)
        } else if self.lit("=") {
            Some(CmpOp::Eq)
        } else if self.peek() == Some(b'<') && !self.at_constructor() {
            self.at += 1;
            Some(CmpOp::Lt)
        } else if self.lit(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let r = self.path_expr()?;
                Ok(Expr::Cmp(Box::new(l), op, Box::new(r)))
            }
            None => Ok(l),
        }
    }

    fn at_constructor(&mut self) -> bool {
        // `<` immediately followed by a name-start char begins a
        // constructor; `< x` (space) is a comparison.
        self.peek() == Some(b'<')
            && matches!(self.peek2(), Some(c) if c.is_ascii_alphabetic() || c == b'_')
    }

    // ----- paths ----------------------------------------------------------------

    fn path_expr(&mut self) -> PResult<Expr> {
        self.ws();
        // Constructor?
        if self.at_constructor() {
            return Ok(Expr::Ctor(self.constructor()?));
        }
        // Primary start.
        let start: Option<PathStart> = if self.peek_kw("document") {
            let save = self.at;
            let _ = self.kw("document");
            self.ws();
            if self.lit("(") {
                let uri = self.string_lit()?;
                self.ws();
                self.expect(")")?;
                Some(PathStart::Document(uri))
            } else {
                self.at = save;
                None
            }
        } else if self.peek() == Some(b'$') {
            Some(PathStart::Var(self.var()?))
        } else if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            self.at += 1;
            Some(PathStart::Context)
        } else {
            None
        };

        match start {
            Some(start) => {
                let steps = self.step_list()?;
                Ok(Expr::Path(PathExpr { start, steps }))
            }
            None => {
                // Literal / call / parenthesized / relative path.
                if let Some(c) = self.peek() {
                    if c == b'"' || c == b'\'' {
                        return Ok(Expr::Lit(Literal::Str(self.string_lit()?)));
                    }
                    if c.is_ascii_digit()
                        || (c == b'-' && matches!(self.peek2(), Some(d) if d.is_ascii_digit()))
                    {
                        return self.number();
                    }
                    if c == b'(' {
                        self.at += 1;
                        let mut items = vec![self.expr()?];
                        self.ws();
                        while self.lit(",") {
                            items.push(self.expr()?);
                            self.ws();
                        }
                        self.expect(")")?;
                        let inner = if items.len() == 1 {
                            items.pop().unwrap()
                        } else {
                            Expr::Sequence(items)
                        };
                        // A parenthesized expr may continue as a path.
                        return Ok(inner);
                    }
                }
                // Function call?
                let save = self.at;
                if let Ok(name) = self.name() {
                    self.ws();
                    if self.peek() == Some(b'(') {
                        self.at += 1;
                        let mut args = Vec::new();
                        self.ws();
                        if self.peek() != Some(b')') {
                            args.push(self.expr()?);
                            self.ws();
                            while self.lit(",") {
                                args.push(self.expr()?);
                                self.ws();
                            }
                        }
                        self.expect(")")?;
                        // Calls may continue as a path: count(...)/x not
                        // supported; treat call as terminal.
                        return Ok(Expr::Call(name, args));
                    }
                    self.at = save;
                }
                // Relative path from the context item.
                let steps = self.relative_steps()?;
                if steps.is_empty() {
                    return Err(self.err("expected expression"));
                }
                Ok(Expr::Path(PathExpr {
                    start: PathStart::Context,
                    steps,
                }))
            }
        }
    }

    fn number(&mut self) -> PResult<Expr> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).unwrap_or("");
        text.parse::<f64>()
            .map(|n| Expr::Lit(Literal::Num(n)))
            .map_err(|_| self.err("bad number"))
    }

    /// Steps following a primary: `/step`, `//step`.
    fn step_list(&mut self) -> PResult<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            self.ws();
            if self.lit("//") {
                let mut s = self.step()?;
                // `//x` is shorthand for descendant (with the step's
                // own axis discarded only if it was the default child).
                if s.axis == Axis::Child {
                    s.axis = Axis::Descendant;
                }
                steps.push(s);
            } else if self.lit("/") {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(steps)
    }

    /// A relative path that begins directly with a step.
    fn relative_steps(&mut self) -> PResult<Vec<Step>> {
        let first = self.step()?;
        let mut steps = vec![first];
        steps.extend(self.step_list()?);
        Ok(steps)
    }

    fn step(&mut self) -> PResult<Step> {
        self.ws();
        // Color spec.
        let color = if self.peek() == Some(b'{') {
            self.at += 1;
            let c = self.name()?;
            self.ws();
            self.expect("}")?;
            Some(c)
        } else {
            None
        };
        self.ws();
        // Attribute shorthand.
        if self.lit("@") {
            let name = self.name()?;
            return Ok(Step {
                color,
                axis: Axis::Attribute,
                test: NodeTest::Name(name),
                predicates: self.predicates()?,
            });
        }
        if self.lit("*") {
            return Ok(Step {
                color,
                axis: Axis::Child,
                test: NodeTest::AnyElement,
                predicates: self.predicates()?,
            });
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            return Ok(Step {
                color,
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        let name = self.name()?;
        // Axis?
        self.ws();
        if self.lit("::") {
            let axis = match name.as_str() {
                "child" => Axis::Child,
                "descendant" => Axis::Descendant,
                "descendant-or-self" => Axis::DescendantOrSelf,
                "parent" => Axis::Parent,
                "ancestor" => Axis::Ancestor,
                "ancestor-or-self" => Axis::AncestorOrSelf,
                "self" => Axis::SelfAxis,
                "attribute" => Axis::Attribute,
                other => return Err(self.err(format!("unknown axis `{other}`"))),
            };
            self.ws();
            let test = if self.lit("node()") {
                NodeTest::AnyNode
            } else if self.lit("*") {
                NodeTest::AnyElement
            } else {
                NodeTest::Name(self.name()?)
            };
            return Ok(Step {
                color,
                axis,
                test,
                predicates: self.predicates()?,
            });
        }
        // Abbreviated: name test on the child axis.
        Ok(Step {
            color,
            axis: Axis::Child,
            test: NodeTest::Name(name),
            predicates: self.predicates()?,
        })
    }

    fn predicates(&mut self) -> PResult<Vec<Expr>> {
        let mut preds = Vec::new();
        loop {
            self.ws();
            if !self.lit("[") {
                break;
            }
            let e = self.or_expr()?;
            self.ws();
            self.expect("]")?;
            preds.push(e);
        }
        Ok(preds)
    }

    // ----- constructors -----------------------------------------------------------

    fn constructor(&mut self) -> PResult<Constructor> {
        self.expect("<")?;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            if self.lit("/>") {
                return Ok(Constructor {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            if self.lit(">") {
                break;
            }
            let aname = self.name()?;
            self.ws();
            self.expect("=")?;
            let v = self.string_lit()?;
            attrs.push((aname, v));
        }
        // Content.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated constructor <{name}>"))),
                Some(b'<') => {
                    if self.b[self.at..].starts_with(b"</") {
                        flush_text(&mut text, &mut children);
                        self.expect("</")?;
                        let close = self.name()?;
                        if close != name {
                            return Err(self.err(format!(
                                "mismatched constructor close </{close}> for <{name}>"
                            )));
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(Constructor {
                            name,
                            attrs,
                            children,
                        });
                    }
                    flush_text(&mut text, &mut children);
                    children.push(ConstructorItem::Element(self.constructor()?));
                }
                Some(b'{') => {
                    flush_text(&mut text, &mut children);
                    self.at += 1;
                    let e = self.expr()?;
                    self.ws();
                    self.expect("}")?;
                    children.push(ConstructorItem::Enclosed(e));
                }
                Some(c) => {
                    text.push(c as char);
                    self.at += 1;
                }
            }
        }
    }
}

fn flush_text(text: &mut String, children: &mut Vec<ConstructorItem>) {
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        children.push(ConstructorItem::Text(trimmed.to_string()));
    }
    text.clear();
}

enum FlworOrUpdate {
    Flwor(Flwor),
    Update(UpdateStmt),
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_colored_path() {
        let e = parse_query(r#"document("mdb.xml")/{red}descendant::movie-genre"#).unwrap();
        let Expr::Path(p) = e else { panic!("not a path") };
        assert_eq!(p.start, PathStart::Document("mdb.xml".into()));
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].color.as_deref(), Some("red"));
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[0].test, NodeTest::Name("movie-genre".into()));
    }

    #[test]
    fn parse_paper_q1() {
        // Figure 3, Q1 (slightly reformatted).
        let q = r#"
            for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
                    {red}descendant::movie[contains({red}child::name, "Eve")]
            return createColor("black", <m-name> { $m/{red}child::name } </m-name>)
        "#;
        let e = parse_query(q).unwrap();
        let Expr::Flwor(f) = e else { panic!("not flwor") };
        assert_eq!(f.clauses.len(), 1);
        let FlworClause::For(v, body) = &f.clauses[0] else {
            panic!()
        };
        assert_eq!(v, "m");
        let Expr::Path(p) = body else { panic!() };
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].predicates.len(), 1);
        // return: createColor(black, ctor).
        let Expr::Call(name, args) = f.ret.as_ref() else {
            panic!()
        };
        assert_eq!(name, "createColor");
        assert_eq!(args.len(), 2);
        assert!(matches!(args[1], Expr::Ctor(_)));
        // Complexity matches Figure 11/12 style counting.
        let c = crate::ast::complexity(&Expr::Flwor(f));
        assert_eq!(c.var_bindings, 1);
        assert_eq!(c.path_exprs, 4); // main path + name pred + contains arg + ctor enclosed
    }

    #[test]
    fn parse_multi_var_for() {
        let q = r#"
            for $m in document("m.xml")/{green}descendant::movie,
                $a in document("m.xml")/{blue}descendant::actor
            where $m/{red}child::votes > 10
            return $a
        "#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else {
            panic!()
        };
        assert_eq!(f.clauses.len(), 2);
        assert!(f.where_.is_some());
    }

    #[test]
    fn parse_comparisons_and_logic() {
        let e = parse_query(r#"$a/x = "v" and $b/y > 3 or $c/z != $d"#).unwrap();
        assert!(matches!(e, Expr::Or(_, _)));
    }

    #[test]
    fn lt_vs_constructor_disambiguation() {
        let cmp = parse_query("$a < 5").unwrap();
        assert!(matches!(cmp, Expr::Cmp(_, CmpOp::Lt, _)));
        let ctor = parse_query("<x>hi</x>").unwrap();
        assert!(matches!(ctor, Expr::Ctor(_)));
    }

    #[test]
    fn parse_nested_constructor_with_enclosed() {
        let e = parse_query(r#"<a t="1"><b>{ $x }</b>literal</a>"#).unwrap();
        let Expr::Ctor(c) = e else { panic!() };
        assert_eq!(c.name, "a");
        assert_eq!(c.attrs, vec![("t".to_string(), "1".to_string())]);
        assert_eq!(c.children.len(), 2);
        assert!(matches!(c.children[0], ConstructorItem::Element(_)));
        assert!(matches!(c.children[1], ConstructorItem::Text(_)));
    }

    #[test]
    fn parse_abbreviated_steps() {
        let Expr::Path(p) = parse_query("$m/{red}name/@id").unwrap() else {
            panic!()
        };
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[0].color.as_deref(), Some("red"));
        assert_eq!(p.steps[1].axis, Axis::Attribute);
    }

    #[test]
    fn parse_double_slash() {
        let Expr::Path(p) = parse_query(r#"document("d")//movie"#).unwrap() else {
            panic!()
        };
        assert_eq!(p.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn parse_parent_and_ancestor_axes() {
        let Expr::Path(p) =
            parse_query("$r/{blue}parent::actor/{blue}ancestor::troupe").unwrap()
        else {
            panic!()
        };
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[1].axis, Axis::Ancestor);
    }

    #[test]
    fn parse_relative_path_in_predicate() {
        let Expr::Path(p) =
            parse_query(r#"document("d")/{red}descendant::movie[{red}child::name = "Eve"]"#)
                .unwrap()
        else {
            panic!()
        };
        let pred = &p.steps[0].predicates[0];
        let Expr::Cmp(l, CmpOp::Eq, _) = pred else { panic!() };
        let Expr::Path(inner) = l.as_ref() else { panic!() };
        assert_eq!(inner.start, PathStart::Context);
    }

    #[test]
    fn parse_order_by() {
        let q = r#"for $v in distinct-values(document("d")/{green}descendant::votes)
                   order by $v
                   return <v>{ $v }</v>"#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else {
            panic!()
        };
        assert_eq!(f.order_by.len(), 1);
        assert!(f.order_by[0].1, "ascending by default");
    }

    #[test]
    fn parse_let_clause() {
        let q = "let $x := $m/{red}name return $x";
        let Expr::Flwor(f) = parse_query(q).unwrap() else {
            panic!()
        };
        assert!(matches!(f.clauses[0], FlworClause::Let(..)));
    }

    #[test]
    fn parse_update_statement() {
        let q = r#"
            for $m in document("d")/{red}descendant::movie
            where $m/{red}child::name = "Eve"
            update $m {
                replace value of $m/{red}child::votes with "42",
                delete $m/{red}child::scene,
                insert <note>fixed</note>
            }
        "#;
        let u = parse_update(q).unwrap();
        assert_eq!(u.target, "m");
        assert_eq!(u.actions.len(), 3);
        assert!(matches!(u.actions[0], UpdateAction::ReplaceValue(..)));
        assert!(matches!(u.actions[1], UpdateAction::Delete(_)));
        assert!(matches!(u.actions[2], UpdateAction::Insert(_)));
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_query("for $m in").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_query("$a/{red").is_err());
        assert!(parse_query(r#"<a>{ $x </a>"#).is_err());
        assert!(parse_query("document(").is_err());
    }

    #[test]
    fn self_closing_constructor() {
        let Expr::Ctor(c) = parse_query(r#"<empty flag="y"/>"#).unwrap() else {
            panic!()
        };
        assert!(c.children.is_empty());
        assert_eq!(c.attrs.len(), 1);
    }

    #[test]
    fn sequence_expression() {
        let e = parse_query("($a, $b, $c)").unwrap();
        let Expr::Sequence(items) = e else { panic!() };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn parse_paper_q4_multicolor_path() {
        // Q4's path uses three different colors across steps.
        let q = r#"document("mdb.xml")/{green}descendant::movie-award
            [contains({green}child::name, "Oscar")]/{green}descendant::movie
            [{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor"#;
        let Expr::Path(p) = parse_query(q).unwrap() else {
            panic!()
        };
        let colors: Vec<&str> = p.steps.iter().map(|s| s.color.as_deref().unwrap()).collect();
        assert_eq!(colors, ["green", "green", "red", "blue"]);
        assert_eq!(p.steps[3].axis, Axis::Parent);
    }

    /// Deterministic token soup: both parsers must reject arbitrary
    /// token sequences with a typed error whose offset lies inside the
    /// input — never a panic. This is the same invariant mctfuzz
    /// checks on every case (see `mct_sim::check_soup`); the RNG is an
    /// inlined xorshift so this crate gains no dev-dependency.
    #[test]
    fn parsers_survive_token_soup() {
        const SOUP: [&str; 48] = [
            "document", "(", ")", "\"d\"", "/", "{", "}", "{red}", "{nope}", "child",
            "descendant", "parent", "self", "::", "*", "node()", "[", "]", "=", "!=", "<", "<=",
            ">", ">=", "\"", "'", "$", "$x", "for", "let", ":=", "in", "where", "order", "by",
            "return", "update", "delete", "insert", "replace", "value", "of", "with", "and",
            "contains", "1", "3.5", "é",
        ];
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let n = (next() % 25) as usize;
            let mut text = String::new();
            for _ in 0..n {
                text.push_str(SOUP[next() as usize % SOUP.len()]);
                if next() % 5 < 2 {
                    text.push(' ');
                }
            }
            for err in [
                parse_query(&text).map(|_| ()).err(),
                parse_update(&text).map(|_| ()).err(),
            ]
            .into_iter()
            .flatten()
            {
                assert!(
                    err.offset <= text.len(),
                    "case {case}: error offset {} past end of {:?} (len {})",
                    err.offset,
                    text,
                    text.len()
                );
            }
        }
    }
}
