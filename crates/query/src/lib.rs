//! # mct-query — the MCXQuery language and engine
//!
//! The query side of the MCT system (§4 of the paper):
//!
//! * [`ast`] — MCXQuery abstract syntax (color-decorated steps, FLWOR,
//!   constructors, updates) and the Figure 11/12 complexity metrics.
//! * [`parser`] — recursive-descent parser for the MCXQuery subset.
//! * [`ops`] — the physical operator algebra: stack-tree structural
//!   join, PathStack holistic chain join, hash value join, nested-loop
//!   inequality join, cross-tree (color transition) operator,
//!   selections, duplicate elimination.
//! * [`mod@eval`] — the navigational interpreter (FLWOR, identity-
//!   preserving construction, `createColor` / `createCopy`, the
//!   duplicate-occurrence dynamic error).
//! * [`plan`] — a heuristic physical planner for colored path
//!   expressions (the paper's "future work" optimizer): single-color
//!   chains run holistically, color changes become cross-tree joins.
//! * [`exec`] — morsel-driven parallel execution: a scoped-thread
//!   worker pool partitioning posting lists and cross-tree join
//!   inputs by node-id range, output-identical to the sequential
//!   operators.
//! * [`twig`] — branching holistic twig joins (TwigStack) for tree
//!   patterns, complementing the chain join in [`ops`].
//! * [`update`] — two-phase color-aware update execution.
//!
//! Benchmark queries use hand-written plans over [`ops`] — the paper
//! "manually specified the query plan, always choosing the one
//! expected to be the best" — while examples and tests exercise the
//! interpreter.

pub mod ast;
pub mod eval;
pub mod exec;
pub mod ops;
pub mod parser;
pub mod plan;
pub mod twig;
pub mod update;

pub use ast::{complexity, update_complexity, Complexity, Expr, UpdateStmt};
pub use eval::{eval, EvalContext, EvalError, Item, Sequence};
pub use exec::CancelToken;
pub use ops::{Rel, Tuple};
pub use parser::{parse_query, parse_update, QueryParseError};
pub use plan::{plan_path, AnalyzeReport, PathPlan, PlanError, StageStats};
pub use twig::{holistic_twig_join, naive_twig_join, TwigNode};
pub use update::{execute_update, execute_update_with, UpdateOutcome};
