//! Color-aware update execution (§4.3).
//!
//! MCXQuery updates follow Tatarinov et al. (reference 25 of the
//! paper): `for`/`let`
//! bindings, a `where` filter, and an `update $target { ... }` body
//! with `delete` / `insert` / `replace value of` actions. As in that
//! proposal (and XQuery Update later), evaluation is two-phase: all
//! binding tuples are evaluated against the *original* database into a
//! pending update list, which is then applied — so updates never
//! observe their own effects.
//!
//! Color semantics per the paper: each action operates on *existing*
//! colored trees; the color is the one the target path located its
//! node in. A `delete` removes the node's whole subtree from that
//! colored tree only (other colors keep the node — no update anomaly);
//! an `insert` appends under the target in its colored tree,
//! implicitly giving new nodes that existing color.

use crate::ast::{FlworClause, UpdateAction, UpdateStmt};
use mct_storage::DiskManager;
use crate::eval::{atomize, effective_boolean, eval, EvalContext, EvalError, EvalResult, Item};
use mct_core::{ColorId, McNodeId, StoredDb};
use std::collections::HashMap;

/// One concrete pending update.
#[derive(Debug)]
enum Pending {
    Delete(McNodeId, ColorId),
    Insert {
        target: McNodeId,
        color: ColorId,
        root: McNodeId,
        edges: HashMap<McNodeId, Vec<McNodeId>>,
    },
    Replace(McNodeId, String),
}

/// What an update did: how many binding tuples produced updates, and
/// how many elements were touched (the paper's Table-2 "results"
/// column for updates — deep's replication shows up here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Binding tuples that emitted at least one action.
    pub tuples: usize,
    /// Individual pending updates applied (elements touched).
    pub elements: usize,
}

/// Execute an update statement. Returns the number of binding tuples
/// that produced updates (the paper's "number of elements updated" is
/// available via [`execute_update_with`]).
pub fn execute_update<D: DiskManager>(stored: &mut StoredDb<D>, u: &UpdateStmt) -> EvalResult<usize> {
    execute_update_with(stored, u, None).map(|o| o.tuples)
}

/// [`execute_update`] with a default color for color-less steps
/// (plain-XQuery updates over single-colored databases) and the full
/// outcome.
///
/// The whole statement — both evaluation phases — runs inside one
/// [`StoredDb`] transaction: on any error (or panic) the store rolls
/// back to its pre-statement state, byte-identical across heaps,
/// indexes, and the logical trees; on success the batch commits (and,
/// when a WAL is attached, becomes durable as one unit).
pub fn execute_update_with<D: DiskManager>(
    stored: &mut StoredDb<D>,
    u: &UpdateStmt,
    default_color: Option<&str>,
) -> EvalResult<UpdateOutcome> {
    stored.with_txn(|s| apply_update(s, u, default_color))
}

/// The non-transactional body of [`execute_update_with`].
fn apply_update<D: DiskManager>(
    stored: &mut StoredDb<D>,
    u: &UpdateStmt,
    default_color: Option<&str>,
) -> EvalResult<UpdateOutcome> {
    // Phase 1: evaluate into a pending list.
    let mut pending: Vec<Pending> = Vec::new();
    let mut tuples = 0usize;
    {
        let mut ctx = EvalContext::new(stored);
        if let Some(c) = default_color {
            ctx = ctx.with_default_color(c)?;
        }
        collect(&mut ctx, u, 0, &mut tuples, &mut pending)?;
    }
    let elements = pending.len();
    // Phase 2: apply.
    let mut dirty_colors: Vec<ColorId> = Vec::new();
    for p in pending {
        match p {
            Pending::Replace(n, v) => {
                stored.update_content(n, &v)?;
            }
            Pending::Delete(n, c) => {
                // A previous delete in this color left the tree dirty;
                // `unindex_node` needs clean codes to find the index
                // entries, so re-annotate (and rebuild the indexes,
                // which are keyed by the renumbered codes) first.
                if stored.db.is_dirty(c) {
                    stored.db.annotate(c);
                    stored.reindex_color(c)?;
                    dirty_colors.retain(|&x| x != c);
                }
                let subtree: Vec<McNodeId> = stored.db.descendants_or_self(n, c).collect();
                for &d in &subtree {
                    stored.unindex_node(d, c)?;
                }
                stored.db.remove_color(n, c);
                // Deletion never invalidates other nodes' codes.
                if !dirty_colors.contains(&c) && stored.db.is_dirty(c) {
                    // Structure changed but codes of remaining nodes
                    // are still valid; clear by re-annotating lazily at
                    // next insert. Mark for safety.
                    dirty_colors.push(c);
                }
            }
            Pending::Insert {
                target,
                color,
                root,
                edges,
            } => {
                // Materialize the constructed fragment in `color`.
                let mut new_nodes = Vec::new();
                attach_fragment(stored, root, &edges, color, &mut new_nodes)?;
                stored.db.append_child(target, root, color);
                // Codes: single leaf goes in the gap; bigger fragments
                // renumber the color.
                let single = new_nodes.len() == 1;
                if single && stored.db.try_assign_gap_codes(root, color) {
                    // fast path
                } else {
                    stored.db.annotate(color);
                    stored.reindex_color(color)?;
                    dirty_colors.retain(|&c| c != color);
                }
                for n in new_nodes {
                    stored.persist_new_element(n)?;
                }
            }
        }
    }
    // Re-annotate anything still marked dirty so subsequent queries
    // see clean codes.
    for c in dirty_colors {
        if stored.db.is_dirty(c) {
            stored.db.annotate(c);
            stored.reindex_color(c)?;
        }
    }
    Ok(UpdateOutcome { tuples, elements })
}

fn attach_fragment<D: DiskManager>(
    stored: &mut StoredDb<D>,
    n: McNodeId,
    edges: &HashMap<McNodeId, Vec<McNodeId>>,
    c: ColorId,
    new_nodes: &mut Vec<McNodeId>,
) -> EvalResult<()> {
    if !stored.db.colors(n).contains(c) {
        stored.db.add_node_color(n, c);
    }
    new_nodes.push(n);
    if let Some(children) = edges.get(&n) {
        for &child in children {
            if stored.db.parent(child, c).is_some() {
                return Err(EvalError::DuplicateNode(
                    child,
                    stored.db.palette.name(c).to_string(),
                ));
            }
            attach_fragment(stored, child, edges, c, new_nodes)?;
            stored.db.append_child(n, child, c);
        }
    }
    Ok(())
}

fn collect<D: DiskManager>(
    ctx: &mut EvalContext<'_, D>,
    u: &UpdateStmt,
    depth: usize,
    tuples: &mut usize,
    out: &mut Vec<Pending>,
) -> EvalResult<()> {
    if depth == u.clauses.len() {
        if let Some(w) = &u.where_ {
            let v = eval(ctx, w)?;
            if !effective_boolean(&v) {
                return Ok(());
            }
        }
        // Resolve the target binding.
        let target_seq = ctx
            .var(&u.target)
            .cloned()
            .ok_or_else(|| EvalError::UnknownVar(u.target.clone()))?;
        let Some(Item::Node(target, target_color)) = target_seq.first().cloned() else {
            return Err(EvalError::Dynamic("update target is not a node".into()));
        };
        let mut emitted = false;
        for action in &u.actions {
            match action {
                UpdateAction::ReplaceValue(what, with) => {
                    let nodes = eval(ctx, what)?;
                    let vseq = eval(ctx, with)?;
                    let value = vseq.first().map(|i| atomize(ctx, i)).unwrap_or_default();
                    for item in nodes {
                        if let Item::Node(n, _) = item {
                            if n == McNodeId::DOCUMENT {
                                return Err(EvalError::Dynamic(
                                    "replace value target is the document node".into(),
                                ));
                            }
                            out.push(Pending::Replace(n, value.clone()));
                            emitted = true;
                        }
                    }
                }
                UpdateAction::Delete(what) => {
                    let nodes = eval(ctx, what)?;
                    for item in nodes {
                        if let Item::Node(n, c) = item {
                            if n == McNodeId::DOCUMENT {
                                return Err(EvalError::Dynamic(
                                    "cannot delete the document node".into(),
                                ));
                            }
                            let c = c
                                .or(target_color)
                                .ok_or(EvalError::NoColor)?;
                            out.push(Pending::Delete(n, c));
                            emitted = true;
                        }
                    }
                }
                UpdateAction::Insert(what) => {
                    let c = target_color.ok_or(EvalError::NoColor)?;
                    let nodes = eval(ctx, what)?;
                    for item in nodes {
                        if let Item::Node(n, _) = item {
                            out.push(Pending::Insert {
                                target,
                                color: c,
                                root: n,
                                edges: ctx.take_pending(),
                            });
                            emitted = true;
                        }
                    }
                }
            }
        }
        if emitted {
            *tuples += 1;
        }
        return Ok(());
    }
    match &u.clauses[depth] {
        FlworClause::For(var, src) => {
            let items = eval(ctx, src)?;
            for item in items {
                let old = ctx.set_var(var, vec![item]);
                collect(ctx, u, depth + 1, tuples, out)?;
                ctx.restore_var(var, old);
            }
            Ok(())
        }
        FlworClause::Let(var, src) => {
            let v = eval(ctx, src)?;
            let old = ctx.set_var(var, v);
            collect(ctx, u, depth + 1, tuples, out)?;
            ctx.restore_var(var, old);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_update;
    use mct_core::{McNodeId, MctDatabase};

    /// genre(red) with 5 movies; award(green) holds movies 0..3.
    fn stored() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let genre = db.new_element("genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let award = db.new_element("award", green);
        db.set_content(award, "Oscar");
        db.append_child(McNodeId::DOCUMENT, award, green);
        for i in 0..5 {
            let m = db.new_element("movie", red);
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            if i < 3 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
            }
        }
        StoredDb::build(db, 8 * 1024 * 1024).unwrap()
    }

    #[test]
    fn replace_value_updates_store_and_index() {
        let mut s = stored();
        let u = parse_update(
            r#"for $m in document("d")/{red}descendant::movie
               where $m/{red}child::name = "Movie 2"
               update $m { replace value of $m/{red}child::name with "Renamed" }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
        assert_eq!(s.content_lookup("Renamed").unwrap().len(), 1);
        assert!(s.content_lookup("Movie 2").unwrap().is_empty());
    }

    #[test]
    fn delete_removes_from_one_color_only() {
        let mut s = stored();
        let u = parse_update(
            r#"for $m in document("d")/{green}descendant::movie
               where $m/{red}child::name = "Movie 1"
               update $m { delete $m }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
        let green = s.db.color("green").unwrap();
        let red = s.db.color("red").unwrap();
        assert_eq!(s.postings_named(green, "movie").unwrap().len(), 2);
        assert_eq!(
            s.postings_named(red, "movie").unwrap().len(),
            5,
            "red hierarchy untouched — the MCT anomaly-free update"
        );
    }

    #[test]
    fn insert_constructs_under_target() {
        let mut s = stored();
        let u = parse_update(
            r#"for $m in document("d")/{red}descendant::movie
               where $m/{red}child::name = "Movie 0"
               update $m { insert <remark>classic</remark> }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
        let red = s.db.color("red").unwrap();
        let remarks = s.postings_named(red, "remark").unwrap();
        assert_eq!(remarks.len(), 1);
        let parent = s.db.parent(remarks[0].node, red).unwrap();
        assert_eq!(s.db.name_str(parent), Some("movie"));
        assert_eq!(s.content_lookup("classic").unwrap().len(), 1);
        s.db.check_invariants();
    }

    #[test]
    fn insert_multinode_fragment_renumbers() {
        let mut s = stored();
        let u = parse_update(
            r#"for $m in document("d")/{red}descendant::movie
               where $m/{red}child::name = "Movie 4"
               update $m { insert <cast><star>X</star><star>Y</star></cast> }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
        let red = s.db.color("red").unwrap();
        assert_eq!(s.postings_named(red, "cast").unwrap().len(), 1);
        assert_eq!(s.postings_named(red, "star").unwrap().len(), 2);
        // Codes stay consistent after the renumber.
        s.db.check_invariants();
        let stars = s.postings_named(red, "star").unwrap();
        for st in stars {
            assert_eq!(s.db.code(st.node, red).unwrap().start, st.code.start);
        }
    }

    #[test]
    fn repeated_single_inserts_survive_a_renumber_without_duplicates() {
        // Sibling code gaps run out after a couple of inserts under the
        // same parent; the next insert renumbers the color, and the
        // renumbering `reindex_color` already writes the new node's
        // structural record — persisting it again must not leave an
        // orphaned duplicate in the heap (caught by the deep checker).
        let mut s = stored();
        for tag in ["first-note", "second-note", "third-note", "fourth-note"] {
            let u = parse_update(&format!(
                r#"for $m in document("d")/{{green}}descendant::movie
                   update $m {{ insert <{tag}>x</{tag}> }}"#
            ))
            .unwrap();
            assert_eq!(execute_update(&mut s, &u).unwrap(), 3);
            let report = s.check().unwrap();
            assert!(
                report.violations.is_empty(),
                "store inconsistent after inserting <{tag}>: {:?}",
                report.violations
            );
        }
        let green = s.db.color("green").unwrap();
        assert_eq!(s.postings_named(green, "third-note").unwrap().len(), 3);
    }

    #[test]
    fn update_touching_many_bindings() {
        let mut s = stored();
        let u = parse_update(
            r#"for $m in document("d")/{green}descendant::movie
               update $m { insert <tag>seen</tag> }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 3);
        let green = s.db.color("green").unwrap();
        assert_eq!(s.postings_named(green, "tag").unwrap().len(), 3);
    }

    #[test]
    fn two_phase_semantics_no_self_observation() {
        let mut s = stored();
        // Inserting <movie> elements must not create bindings for the
        // same run (phase-1 snapshot).
        let u = parse_update(
            r#"for $m in document("d")/{red}descendant::movie
               update $m { insert <movie>nested</movie> }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 5, "exactly the original 5");
        let red = s.db.color("red").unwrap();
        assert_eq!(s.postings_named(red, "movie").unwrap().len(), 10);
    }

    use mct_storage::{BufferPool, FaultDisk, FaultInjector, MemDisk, Wal};

    /// The same database as [`stored`], on a WAL-attached pool whose
    /// disks share one fault injector (disarmed during the build).
    fn faulted_stored() -> (StoredDb<FaultDisk<MemDisk>>, FaultInjector) {
        let injector = FaultInjector::new(7);
        let data = FaultDisk::new(MemDisk::new(), injector.clone());
        let wal_disk = Box::new(FaultDisk::new(MemDisk::new(), injector.clone()));
        let wal = Wal::create(wal_disk).unwrap();
        let mut pool = BufferPool::new(data, 8 * 1024 * 1024);
        pool.attach_wal(wal);
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let genre = db.new_element("genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        for i in 0..5 {
            let m = db.new_element("movie", red);
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
        }
        let mut s = StoredDb::build_on(pool, db).unwrap();
        s.sync().unwrap();
        (s, injector)
    }

    /// Full logical-state fingerprint: every node's tag, content,
    /// colors, and red-tree parent.
    fn digest(s: &StoredDb<FaultDisk<MemDisk>>) -> String {
        let red = s.db.color("red").unwrap();
        let mut out = String::new();
        for i in 0..s.db.len() {
            let n = McNodeId(i as u32);
            out.push_str(&format!(
                "{i}:{:?}/{:?}/{:?}/{:?};",
                s.db.name_str(n),
                s.db.content(n),
                s.db.colors(n),
                s.db.parent(n, red).map(|p| p.0)
            ));
        }
        out
    }

    /// Tentpole acceptance: a storage failure at ANY write boundary
    /// during an update leaves the store exactly as it was — typed
    /// error out, rollback applied, deep check clean — and with the
    /// fault gone the very same statement succeeds.
    #[test]
    fn failed_update_rolls_back_at_every_write_boundary() {
        let text = r#"for $m in document("d")/{red}descendant::movie
                      where $m/{red}child::name = "Movie 2"
                      update $m { replace value of $m/{red}child::name with "Renamed",
                                  insert <review>good</review> }"#;
        // Fault-free reference run for the fully-applied fingerprint.
        let after = {
            let (mut s, _) = faulted_stored();
            let u = parse_update(text).unwrap();
            assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
            digest(&s)
        };
        let mut rollbacks = 0u32;
        for k in 0..10_000 {
            let (mut s, injector) = faulted_stored();
            let before = digest(&s);
            let u = parse_update(text).unwrap();
            injector.fail_at_write(injector.writes() + k);
            match execute_update(&mut s, &u) {
                Err(EvalError::Storage(_)) => {
                    injector.disarm();
                    // Atomicity: fully absent (abort before the WAL
                    // commit point) or fully applied (flush I/O error
                    // after it) — never in between.
                    let now = digest(&s);
                    assert!(
                        now == before || now == after,
                        "partial state at write {k}:\n{now}"
                    );
                    let rep = s.check().unwrap();
                    assert!(rep.is_ok(), "store inconsistent at write {k}: {rep}");
                    // The store must remain fully usable either way.
                    if now == before {
                        rollbacks += 1;
                        let u2 = parse_update(text).unwrap();
                        assert_eq!(execute_update(&mut s, &u2).unwrap(), 1);
                    }
                    assert_eq!(s.content_lookup("Renamed").unwrap().len(), 1);
                }
                Ok(tuples) => {
                    assert_eq!(tuples, 1);
                    assert!(rollbacks > 0, "no write boundary ever rolled back");
                    assert_eq!(digest(&s), after);
                    assert!(s.check().unwrap().is_ok());
                    return;
                }
                Err(e) => panic!("unexpected error class at write {k}: {e}"),
            }
        }
        panic!("update never ran to completion");
    }

    /// A panic inside update application aborts the transaction and
    /// leaves the store intact and usable (satellite #3, core level).
    #[test]
    fn panicking_update_path_aborts_cleanly() {
        let (mut s, _injector) = faulted_stored();
        let before = digest(&s);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.with_txn(|inner| -> Result<(), mct_storage::StorageError> {
                let n = inner.content_lookup("Movie 1").unwrap()[0];
                inner.update_content(n, "Halfway").unwrap();
                panic!("boom mid-update");
            })
        }));
        assert!(r.is_err());
        assert_eq!(digest(&s), before);
        assert!(s.check().unwrap().is_ok());
        let u = parse_update(
            r#"for $m in document("d")/{red}descendant::movie
               where $m/{red}child::name = "Movie 1"
               update $m { replace value of $m/{red}child::name with "After" }"#,
        )
        .unwrap();
        assert_eq!(execute_update(&mut s, &u).unwrap(), 1);
    }
}
