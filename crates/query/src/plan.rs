//! A heuristic physical planner for MCXQuery path expressions.
//!
//! The paper evaluated with hand-picked plans and left the optimizer
//! as future work: "the query optimizer design is beyond the scope of
//! this paper" (§6.2). This module implements the natural first
//! optimizer for the MCT algebra:
//!
//! 1. **Segment** a colored path expression into maximal single-color
//!    runs of downward steps (`child` / `descendant`).
//! 2. Compile each run into index scans feeding a **holistic chain
//!    join** (PathStack), with content/attribute predicates applied as
//!    early as possible — on the scan output, before any join.
//! 3. Join consecutive runs with the **cross-tree operator** when the
//!    color changes (the paper's "evaluate a single-color query, then
//!    a cross-tree join, before evaluating the next single-color
//!    query" strategy), or with parent navigation for reverse steps.
//! 4. Equality predicates against string literals prefer the
//!    **content index** over a scan+filter when they bind the first
//!    step (index-driven entry point).
//!
//! The planner handles the (large) fragment used by the paper's
//! queries: absolute paths of forward steps with `parent` reverse
//! steps, predicates comparing a child/attribute path to a literal,
//! `contains`, and numeric comparisons. Anything outside the fragment
//! is reported as [`PlanError::Unsupported`] so callers can fall back
//! to the interpreter ([`crate::eval()`]).

use crate::ast::{Axis, CmpOp, Expr, Literal, NodeTest, PathExpr, PathStart, Step};
use crate::exec::{self, CancelToken};
use mct_storage::{DiskManager, StorageError};
use crate::ops::{
    self, dup_elim, select_attr_eq, select_contains,
    select_content_eq, select_number_cmp, NumCmp, Rel, Tuple,
};
use mct_core::{ColorId, McNodeId, StoredDb, StructRef};
use mct_storage::PoolStats;
use std::fmt;
use std::time::{Duration, Instant};

/// Chain under construction: `(color, tags, edge relations, per-tag
/// predicates, leading-`child::` root restriction)`.
type ChainAcc = (ColorId, Vec<String>, Vec<Rel>, Vec<Vec<CompiledPred>>, bool);

/// Planner failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The expression is outside the planner's fragment; use the
    /// interpreter instead.
    Unsupported(String),
    /// A color literal did not resolve.
    UnknownColor(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsupported(what) => write!(f, "planner: unsupported construct: {what}"),
            PlanError::UnknownColor(c) => write!(f, "planner: unknown color {{{c}}}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled plan: a sequence of physical operations.
#[derive(Debug)]
pub struct PathPlan {
    stages: Vec<Stage>,
}

/// One pipeline stage (kept explainable for `EXPLAIN`-style output).
#[derive(Debug)]
enum Stage {
    /// Index-driven entry: content-index lookup for `tag[pred = lit]`.
    ContentEntry {
        color: ColorId,
        tag: String,
        child_tag: String,
        value: String,
    },
    /// A single-color chain of downward steps, run holistically.
    Chain {
        color: ColorId,
        tags: Vec<String>,
        rels: Vec<Rel>,
        /// Predicates to apply per chain position, after the join.
        preds: Vec<Vec<CompiledPred>>,
        /// The chain opens the path with a `child::` step: only roots
        /// of the colored tree may bind the first tag (`document/
        /// child::x` reaches roots, unlike `descendant::x`).
        root_only: bool,
    },
    /// Color transition on the current head column.
    CrossTree { to: ColorId },
    /// Parent navigation in a color.
    Parent { color: ColorId, tag: Option<String> },
    /// Final duplicate elimination on the head column.
    DupElim,
}

/// A predicate compiled to a physical selection.
#[derive(Debug, Clone)]
enum CompiledPred {
    ContentEq { child: Option<String>, value: String },
    ContentContains { child: Option<String>, value: String },
    ContentCmp { child: Option<String>, cmp: NumCmp, value: f64 },
    AttrEq { name: String, value: String },
}

/// Per-operator measurements from one EXPLAIN ANALYZE execution.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// The stage's renderer label (same text EXPLAIN prints).
    pub label: String,
    /// Tuples flowing into the stage.
    pub rows_in: u64,
    /// Tuples the stage produced.
    pub rows_out: u64,
    /// Wall-clock time spent in the stage.
    pub elapsed: Duration,
    /// Buffer-pool counters accumulated during the stage.
    pub pool: PoolStats,
}

/// The result of [`PathPlan::execute_analyze`]: per-stage actuals
/// plus totals, renderable as an annotated plan tree.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// One entry per plan stage, in pipeline order.
    pub stages: Vec<StageStats>,
    /// Total execution wall-clock time.
    pub total: Duration,
    /// Buffer-pool counters accumulated over the whole execution.
    pub pool: PoolStats,
    /// Final result cardinality.
    pub rows: u64,
}

impl AnalyzeReport {
    /// Annotated plan tree (EXPLAIN layout plus per-stage actuals)
    /// with a totals footer.
    pub fn render(&self) -> String {
        let lines: Vec<String> = self
            .stages
            .iter()
            .map(|st| {
                format!(
                    "{}  (rows {} -> {}; {}; pages {} hit, {} miss)",
                    st.label,
                    st.rows_in,
                    st.rows_out,
                    fmt_duration(st.elapsed),
                    st.pool.hits,
                    st.pool.misses
                )
            })
            .collect();
        let mut out = render_tree(&lines);
        out.push_str(&format!(
            "total: {} rows; {}; pages {} hit, {} miss\n",
            self.rows,
            fmt_duration(self.total),
            self.pool.hits,
            self.pool.misses
        ));
        out
    }
}

/// Render pipeline-stage lines as a plan tree: the last stage is the
/// root, each earlier stage its child, one extra indent per level.
/// Shared by EXPLAIN and EXPLAIN ANALYZE so their shapes always agree
/// (and tests can assert on the stable `"   "`-per-level indentation).
fn render_tree(lines: &[String]) -> String {
    let mut out = String::new();
    for (depth, line) in lines.iter().rev().enumerate() {
        if depth > 0 {
            out.push_str(&"   ".repeat(depth - 1));
            out.push_str("└─ ");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

impl PathPlan {
    fn stage_label<D: DiskManager>(&self, s: &StoredDb<D>, st: &Stage) -> String {
        match st {
            Stage::ContentEntry { color, tag, child_tag, value } => format!(
                "content-index entry: {tag}[{child_tag} = {value:?}] in {{{}}}",
                s.db.palette.name(*color)
            ),
            Stage::Chain { color, tags, .. } => format!(
                "holistic chain join over {:?} in {{{}}}",
                tags,
                s.db.palette.name(*color)
            ),
            Stage::CrossTree { to } => {
                format!("cross-tree join -> {{{}}}", s.db.palette.name(*to))
            }
            Stage::Parent { color, tag } => format!(
                "parent step in {{{}}}{}",
                s.db.palette.name(*color),
                tag.as_deref()
                    .map(|t| format!(" [{t}]"))
                    .unwrap_or_default()
            ),
            Stage::DupElim => "duplicate elimination".to_string(),
        }
    }

    fn labels<D: DiskManager>(&self, s: &StoredDb<D>) -> Vec<String> {
        self.stages.iter().map(|st| self.stage_label(s, st)).collect()
    }

    /// Human-readable plan description (EXPLAIN).
    pub fn explain<D: DiskManager>(&self, s: &StoredDb<D>) -> String {
        render_tree(&self.labels(s))
    }

    /// Execute the plan, returning the final single-column tuples.
    pub fn execute<D: DiskManager>(&self, s: &mut StoredDb<D>) -> mct_storage::Result<Vec<Tuple>> {
        self.run(s, None, 1).map(|(tuples, _)| tuples)
    }

    /// Hoist the one `&mut` prerequisite of execution: annotate every
    /// color the plan touches. After this (and until a mutation dirties
    /// a color again), the plan can run over `&StoredDb` via
    /// [`PathPlan::execute_shared`].
    pub fn prepare<D: DiskManager>(&self, s: &mut StoredDb<D>) {
        for st in &self.stages {
            match st {
                Stage::ContentEntry { color, .. }
                | Stage::Chain { color, .. }
                | Stage::Parent { color, .. } => s.db.ensure_annotated(*color),
                Stage::CrossTree { to } => s.db.ensure_annotated(*to),
                Stage::DupElim => {}
            }
        }
    }

    /// Execute over a shared reference — the serving path, where many
    /// worker threads run cached plans against one `StoredDb` behind a
    /// read lock. Every color the plan touches must be annotated and
    /// clean (guaranteed after [`PathPlan::prepare`], and restored by
    /// [`StoredDb::ensure_all_annotated`] after updates); a dirty color
    /// is reported as an error here rather than the panic the in-memory
    /// accessors would raise.
    ///
    /// `cancel` is consulted at stage and morsel boundaries; an elapsed
    /// deadline surfaces as [`StorageError::Cancelled`].
    pub fn execute_shared<D: DiskManager>(
        &self,
        s: &StoredDb<D>,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> mct_storage::Result<Vec<Tuple>> {
        self.check_clean(s)?;
        self.run_shared(s, None, threads, cancel)
            .map(|(tuples, _)| tuples)
    }

    /// [`PathPlan::execute_shared`] with per-stage actuals — the
    /// serving layer's always-on EXPLAIN ANALYZE: worker threads run
    /// this under the read lock so a request that turns out slow can
    /// be captured with its full annotated plan tree without being
    /// re-executed. The per-stage instrumentation is two `Instant`
    /// reads and one pool-stats snapshot per stage; plans have a
    /// handful of stages, so the overhead is noise next to execution.
    pub fn execute_shared_analyze<D: DiskManager>(
        &self,
        s: &StoredDb<D>,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> mct_storage::Result<(Vec<Tuple>, AnalyzeReport)> {
        self.check_clean(s)?;
        let labels = self.labels(s);
        let pool_mark = s.pool.stats();
        let t0 = Instant::now();
        let (tuples, stages) = self.run_shared(s, Some(&labels), threads, cancel)?;
        let report = AnalyzeReport {
            stages,
            total: t0.elapsed(),
            pool: s.pool.stats().delta_since(&pool_mark),
            rows: tuples.len() as u64,
        };
        Ok((tuples, report))
    }

    /// Shared-execution precondition: every color the plan touches is
    /// annotated and clean (a dirty color is an error here rather than
    /// the panic the in-memory accessors would raise).
    fn check_clean<D: DiskManager>(&self, s: &StoredDb<D>) -> mct_storage::Result<()> {
        for st in &self.stages {
            let c = match st {
                Stage::ContentEntry { color, .. }
                | Stage::Chain { color, .. }
                | Stage::Parent { color, .. } => *color,
                Stage::CrossTree { to } => *to,
                Stage::DupElim => continue,
            };
            if s.db.is_dirty(c) {
                return Err(StorageError::Corrupt(
                    "color tree not annotated; call prepare/ensure_all_annotated first",
                ));
            }
        }
        Ok(())
    }

    /// Execute with `threads` morsel workers. Output is byte-identical
    /// to [`PathPlan::execute`]: the parallel operators merge chunk
    /// results in chunk order and the Chain/CrossTree stages re-sort
    /// by document order (see [`crate::exec`]). `threads <= 1` is the
    /// sequential path.
    pub fn execute_parallel<D: DiskManager>(
        &self,
        s: &mut StoredDb<D>,
        threads: usize,
    ) -> mct_storage::Result<Vec<Tuple>> {
        self.run(s, None, threads).map(|(tuples, _)| tuples)
    }

    /// Execute the plan collecting per-stage actuals (EXPLAIN
    /// ANALYZE): rows in/out, elapsed time, and buffer-pool deltas.
    pub fn execute_analyze<D: DiskManager>(
        &self,
        s: &mut StoredDb<D>,
    ) -> mct_storage::Result<(Vec<Tuple>, AnalyzeReport)> {
        self.execute_analyze_parallel(s, 1)
    }

    /// [`PathPlan::execute_analyze`] with `threads` morsel workers:
    /// per-stage wall clock then reflects the parallel operators, and
    /// pool deltas aggregate the page traffic of every worker.
    pub fn execute_analyze_parallel<D: DiskManager>(
        &self,
        s: &mut StoredDb<D>,
        threads: usize,
    ) -> mct_storage::Result<(Vec<Tuple>, AnalyzeReport)> {
        let labels = self.labels(s);
        let pool_mark = s.pool.stats();
        let t0 = Instant::now();
        let (tuples, stages) = self.run(s, Some(&labels), threads)?;
        let report = AnalyzeReport {
            stages,
            total: t0.elapsed(),
            pool: s.pool.stats().delta_since(&pool_mark),
            rows: tuples.len() as u64,
        };
        Ok((tuples, report))
    }

    /// Pipeline driver behind both execute flavors. With
    /// `labels: Some(..)`, each stage is timed and its pool delta
    /// captured; without, only the (cheap) spans and row counters run.
    /// With `threads > 1`, Chain and CrossTree stages fan their inputs
    /// out over [`exec::run_morsels`] workers.
    fn run<D: DiskManager>(
        &self,
        s: &mut StoredDb<D>,
        labels: Option<&[String]>,
        threads: usize,
    ) -> mct_storage::Result<(Vec<Tuple>, Vec<StageStats>)> {
        // Hoist color annotation: parent navigation and predicate
        // evaluation need in-memory interval codes, and annotating is
        // the one `&mut` operation in the pipeline. Doing it up front
        // leaves the stage loop a pure read, so morsel workers can
        // share `&StoredDb` freely.
        self.prepare(s);
        self.run_shared(s, labels, threads, None)
    }

    /// The read-only pipeline driver: every color already annotated
    /// (see [`PathPlan::prepare`]), so `&StoredDb` suffices and the
    /// serving layer can run many plans concurrently under a read lock.
    fn run_shared<D: DiskManager>(
        &self,
        s: &StoredDb<D>,
        labels: Option<&[String]>,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> mct_storage::Result<(Vec<Tuple>, Vec<StageStats>)> {
        mct_obs::counter("query.plan.executions").inc();
        let mut collected = Vec::new();
        let mut current: Option<Vec<Tuple>> = None;
        for (i, st) in self.stages.iter().enumerate() {
            exec::check_cancel(cancel)?;
            let _span = mct_obs::trace::span(match st {
                Stage::ContentEntry { .. } => "plan.content_entry",
                Stage::Chain { .. } => "plan.chain",
                Stage::CrossTree { .. } => "plan.crosstree",
                Stage::Parent { .. } => "plan.parent",
                Stage::DupElim => "plan.dup_elim",
            });
            let rows_in = current.as_ref().map_or(0, Vec::len) as u64;
            let mark = labels.map(|_| (s.pool.stats(), Instant::now()));
            current = Some(match st {
                Stage::ContentEntry { color, tag, child_tag, value } => {
                    let hits = s.content_lookup(value)?;
                    let mut out = Vec::new();
                    for n in hits {
                        if s.db.name_str(n) != Some(child_tag.as_str()) {
                            continue;
                        }
                        if let Some(p) = s.db.parent(n, *color) {
                            if s.db.name_str(p) == Some(tag.as_str()) {
                                if let Some(code) = s.db.code(p, *color) {
                                    out.push(vec![StructRef { node: p, code }]);
                                }
                            }
                        }
                    }
                    out.sort_by_key(|t| t[0].code.start);
                    out.dedup_by_key(|t| t[0].node);
                    out
                }
                Stage::Chain { color, tags, rels, preds, root_only } => {
                    // Gather the posting lists; a leading `«pipeline»`
                    // placeholder consumes the incoming tuples.
                    let mut lists: Vec<Vec<StructRef>> = Vec::with_capacity(tags.len());
                    let start = if tags.first().map(String::as_str) == Some("«pipeline»") {
                        let cur = current.take().unwrap_or_default();
                        lists.push(cur.into_iter().map(|t| t[0]).collect());
                        1
                    } else {
                        0
                    };
                    // Gather the remaining posting lists — one index
                    // scan per chain tag, fanned out when parallel.
                    let rest = &tags[start..];
                    if threads > 1 && rest.len() > 1 {
                        lists.extend(exec::run_morsels(threads, rest.len(), |i| {
                            s.postings_named(*color, &rest[i])
                        })?);
                    } else {
                        for tag in rest {
                            lists.push(s.postings_named(*color, tag)?);
                        }
                    }
                    if *root_only {
                        // `document/child::x`: only roots of the
                        // colored tree bind the opening tag.
                        lists[0].retain(|r| {
                            matches!(s.db.parent(r.node, *color), None | Some(McNodeId::DOCUMENT))
                        });
                    }
                    let joined = exec::holistic_chain_par(&lists, rels, threads, cancel)?;
                    // Apply per-position predicates, then project to the
                    // last column.
                    let mut tuples = joined;
                    for (pos, ps) in preds.iter().enumerate() {
                        for p in ps {
                            tuples = apply_pred_par(s, tuples, pos, *color, p, threads, cancel)?;
                        }
                    }
                    ops::sort_by_col(ops::project(tuples, &[tags.len() - 1]), 0)
                }
                Stage::CrossTree { to } => {
                    let cur = current.take().unwrap_or_default();
                    exec::cross_tree_op_par(s, cur, 0, *to, threads, cancel)?
                }
                Stage::Parent { color, tag } => {
                    let cur = current.take().unwrap_or_default();
                    let mut out = Vec::new();
                    for t in cur {
                        if let Some(p) = s.db.parent(t[0].node, *color) {
                            if p == McNodeId::DOCUMENT {
                                continue;
                            }
                            if let Some(want) = tag {
                                if s.db.name_str(p) != Some(want.as_str()) {
                                    continue;
                                }
                            }
                            if let Some(code) = s.db.code(p, *color) {
                                out.push(vec![StructRef { node: p, code }]);
                            }
                        }
                    }
                    out.sort_by_key(|t| t[0].code.start);
                    out
                }
                Stage::DupElim => dup_elim(current.take().unwrap_or_default(), &[0]),
            });
            let rows_out = current.as_ref().map_or(0, Vec::len) as u64;
            mct_obs::counter("query.plan.rows").add(rows_out);
            if let (Some(labels), Some((pool_mark, stage_t0))) = (labels, mark) {
                collected.push(StageStats {
                    label: labels[i].clone(),
                    rows_in,
                    rows_out,
                    elapsed: stage_t0.elapsed(),
                    pool: s.pool.stats().delta_since(&pool_mark),
                });
            }
        }
        Ok((current.unwrap_or_default(), collected))
    }
}

/// [`apply_pred`] over morsels: predicates filter tuples
/// independently and chunk outputs merge in chunk order, so the
/// result equals the sequential filter exactly.
fn apply_pred_par<D: DiskManager>(
    s: &StoredDb<D>,
    tuples: Vec<Tuple>,
    col: usize,
    color: ColorId,
    p: &CompiledPred,
    threads: usize,
    cancel: Option<&CancelToken>,
) -> mct_storage::Result<Vec<Tuple>> {
    if threads <= 1 || tuples.len() < 2 * exec::MIN_MORSEL {
        return apply_pred(s, tuples, col, color, p);
    }
    let ranges = exec::chunk_ranges(tuples.len(), threads);
    let chunks = exec::run_morsels(threads, ranges.len(), |ci| {
        exec::check_cancel(cancel)?;
        apply_pred(s, tuples[ranges[ci].clone()].to_vec(), col, color, p)
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Apply one compiled predicate. Callers must have annotated `color`
/// already (see [`PathPlan::run`]'s hoist) — this is a pure read and
/// safe to fan across threads.
fn apply_pred<D: DiskManager>(
    s: &StoredDb<D>,
    tuples: Vec<Tuple>,
    col: usize,
    color: ColorId,
    p: &CompiledPred,
) -> mct_storage::Result<Vec<Tuple>> {
    // Predicates on a named child evaluate against that child's content.
    let resolve_child = |s: &StoredDb<D>, tuples: Vec<Tuple>, child: &Option<String>| {
        match child {
            None => tuples,
            Some(name) => tuples
                .into_iter()
                .filter(|t| {
                    s.db.children(t[col].node, color)
                        .any(|ch| s.db.name_str(ch) == Some(name.as_str()))
                })
                .collect(),
        }
    };
    match p {
        CompiledPred::AttrEq { name, value } => select_attr_eq(s, tuples, col, name, value),
        CompiledPred::ContentEq { child: None, value } => {
            select_content_eq(s, tuples, col, value)
        }
        CompiledPred::ContentContains { child: None, value } => {
            select_contains(s, tuples, col, value)
        }
        CompiledPred::ContentCmp { child: None, cmp, value } => {
            select_number_cmp(s, tuples, col, *cmp, *value)
        }
        // Child-targeted predicates: test every same-named child.
        CompiledPred::ContentEq { child: Some(name), value } => {
            let candidates = resolve_child(s, tuples, &Some(name.clone()));
            filter_by_child(s, candidates, col, color, name, |c| c == value.as_str())
        }
        CompiledPred::ContentContains { child: Some(name), value } => {
            let candidates = resolve_child(s, tuples, &Some(name.clone()));
            filter_by_child(s, candidates, col, color, name, |c| c.contains(value.as_str()))
        }
        CompiledPred::ContentCmp { child: Some(name), cmp, value } => {
            let candidates = resolve_child(s, tuples, &Some(name.clone()));
            let cmp = *cmp;
            let value = *value;
            filter_by_child(s, candidates, col, color, name, move |c| {
                c.trim().parse::<f64>().map(|v| cmp.test(v, value)).unwrap_or(false)
            })
        }
    }
}

fn filter_by_child<D: DiskManager>(
    s: &StoredDb<D>,
    tuples: Vec<Tuple>,
    col: usize,
    color: ColorId,
    child: &str,
    test: impl Fn(&str) -> bool,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in tuples {
        let kids: Vec<McNodeId> = s
            .db
            .children(t[col].node, color)
            .filter(|&ch| s.db.name_str(ch) == Some(child))
            .collect();
        let mut hit = false;
        for ch in kids {
            if let Some(content) = s.fetch_content(ch)? {
                if test(&content) {
                    hit = true;
                    break;
                }
            }
        }
        if hit {
            out.push(t);
        }
    }
    Ok(out)
}

/// Compile an absolute colored path expression into a physical plan.
pub fn plan_path<D: DiskManager>(s: &StoredDb<D>, path: &PathExpr, dedup: bool) -> Result<PathPlan, PlanError> {
    if path.start == PathStart::Context {
        return Err(PlanError::Unsupported("relative path".into()));
    }
    if let PathStart::Var(v) = &path.start {
        return Err(PlanError::Unsupported(format!("variable start ${v}")));
    }
    let mut stages: Vec<Stage> = Vec::new();
    let mut current_color: Option<ColorId> = None;
    let mut chain: Option<ChainAcc> = None;
    // Whether a prior stage's output feeds the next chain.
    let mut has_pipeline = false;

    let flush = |stages: &mut Vec<Stage>,
                 chain: &mut Option<ChainAcc>,
                 has_pipeline: &mut bool| {
        if let Some((color, tags, rels, preds, root_only)) = chain.take() {
            stages.push(Stage::Chain { color, tags, rels, preds, root_only });
            *has_pipeline = true;
        }
    };

    for step in &path.steps {
        let color = resolve_color(s, step)?;
        let tag = match &step.test {
            NodeTest::Name(n) => n.clone(),
            other => {
                return Err(PlanError::Unsupported(format!("node test {other:?}")));
            }
        };
        let preds = compile_preds(step)?;
        match step.axis {
            Axis::Child | Axis::Descendant => {
                let rel = if step.axis == Axis::Child {
                    Rel::Child
                } else {
                    Rel::Descendant
                };
                let color_changed = current_color != Some(color);
                if color_changed {
                    flush(&mut stages, &mut chain, &mut has_pipeline);
                    if current_color.is_some() {
                        stages.push(Stage::CrossTree { to: color });
                        has_pipeline = true;
                    }
                    current_color = Some(color);
                }
                match &mut chain {
                    Some((_, tags, rels, all_preds, _)) => {
                        tags.push(tag);
                        rels.push(rel);
                        all_preds.push(preds);
                    }
                    None => {
                        if has_pipeline {
                            // Continue from the previous stage's output.
                            chain = Some((
                                color,
                                vec!["«pipeline»".into(), tag],
                                vec![rel],
                                vec![Vec::new(), preds],
                                false,
                            ));
                            has_pipeline = false;
                        } else {
                            // The path-opening chain: a `child::` step
                            // here means children of the document node,
                            // i.e. only roots of the colored tree.
                            chain = Some((
                                color,
                                vec![tag],
                                Vec::new(),
                                vec![preds],
                                rel == Rel::Child,
                            ));
                        }
                    }
                }
            }
            Axis::Parent => {
                flush(&mut stages, &mut chain, &mut has_pipeline);
                if current_color != Some(color) && current_color.is_some() {
                    stages.push(Stage::CrossTree { to: color });
                }
                current_color = Some(color);
                stages.push(Stage::Parent {
                    color,
                    tag: Some(tag),
                });
                has_pipeline = true;
                if !preds.is_empty() {
                    return Err(PlanError::Unsupported("predicate on parent step".into()));
                }
            }
            other => {
                return Err(PlanError::Unsupported(format!("axis {other:?}")));
            }
        }
    }
    flush(&mut stages, &mut chain, &mut has_pipeline);
    if dedup {
        stages.push(Stage::DupElim);
    }
    // Index-entry rewrite: a leading chain whose first tag has an
    // equality predicate on a child becomes a content-index entry.
    if let Some(Stage::Chain { color, tags, preds, root_only, .. }) = stages.first() {
        // A root-restricted opening (`document/child::x`) keeps the
        // index scan: the content-index entry point has no way to
        // re-impose the root constraint.
        if !tags.is_empty() && tags[0] != "«pipeline»" && !root_only {
            if let Some(CompiledPred::ContentEq { child: Some(cname), value }) =
                preds.first().and_then(|ps| ps.first())
            {
                let entry = Stage::ContentEntry {
                    color: *color,
                    tag: tags[0].clone(),
                    child_tag: cname.clone(),
                    value: value.clone(),
                };
                // Rebuild the chain with the pipeline placeholder and
                // the remaining predicates of position 0.
                if let Some(Stage::Chain { tags, preds, .. }) = stages.first_mut() {
                    tags[0] = "«pipeline»".into();
                    preds[0].remove(0);
                }
                stages.insert(0, entry);
            }
        }
    }
    Ok(PathPlan { stages })
}

fn resolve_color<D: DiskManager>(s: &StoredDb<D>, step: &Step) -> Result<ColorId, PlanError> {
    match &step.color {
        Some(name) => s
            .db
            .color(name)
            .ok_or_else(|| PlanError::UnknownColor(name.clone())),
        None => {
            // Single-color databases default to their only color.
            if s.db.palette.len() == 1 {
                Ok(ColorId(0))
            } else {
                Err(PlanError::Unsupported(
                    "step without color on a multi-colored database".into(),
                ))
            }
        }
    }
}

/// Compile `[...]` predicates into physical selections.
fn compile_preds(step: &Step) -> Result<Vec<CompiledPred>, PlanError> {
    let mut out = Vec::new();
    for pred in &step.predicates {
        out.push(compile_pred(pred)?);
    }
    Ok(out)
}

fn compile_pred(e: &Expr) -> Result<CompiledPred, PlanError> {
    match e {
        Expr::Cmp(l, op, r) => {
            let (child, attr) = pred_target(l)?;
            match (&**r, attr) {
                (Expr::Lit(Literal::Str(v)), Some(attr)) if *op == CmpOp::Eq => {
                    Ok(CompiledPred::AttrEq { name: attr, value: v.clone() })
                }
                (Expr::Lit(Literal::Str(v)), None) if *op == CmpOp::Eq => {
                    Ok(CompiledPred::ContentEq { child, value: v.clone() })
                }
                (Expr::Lit(Literal::Num(n)), None) => Ok(CompiledPred::ContentCmp {
                    child,
                    cmp: num_cmp(*op),
                    value: *n,
                }),
                (Expr::Lit(Literal::Str(v)), None) => {
                    // Non-equality string comparison: only = supported.
                    Err(PlanError::Unsupported(format!(
                        "string comparison {op:?} {v:?}"
                    )))
                }
                other => Err(PlanError::Unsupported(format!("predicate rhs {other:?}"))),
            }
        }
        Expr::Call(name, args) if name == "contains" && args.len() == 2 => {
            let (child, attr) = pred_target(&args[0])?;
            if attr.is_some() {
                return Err(PlanError::Unsupported("contains on attribute".into()));
            }
            match &args[1] {
                Expr::Lit(Literal::Str(v)) => Ok(CompiledPred::ContentContains {
                    child,
                    value: v.clone(),
                }),
                other => Err(PlanError::Unsupported(format!("contains arg {other:?}"))),
            }
        }
        other => Err(PlanError::Unsupported(format!("predicate {other:?}"))),
    }
}

/// What a predicate's left side targets: `(child element, attribute)`.
/// `.` → (None, None); `child::name` → (Some(name), None);
/// `@attr` → (None, Some(attr)).
fn pred_target(e: &Expr) -> Result<(Option<String>, Option<String>), PlanError> {
    let Expr::Path(p) = e else {
        return Err(PlanError::Unsupported(format!("predicate lhs {e:?}")));
    };
    if p.start != PathStart::Context {
        return Err(PlanError::Unsupported("non-relative predicate path".into()));
    }
    match p.steps.as_slice() {
        [] => Ok((None, None)),
        [one] => match (&one.axis, &one.test) {
            (Axis::SelfAxis, _) => Ok((None, None)),
            (Axis::Child, NodeTest::Name(n)) => Ok((Some(n.clone()), None)),
            (Axis::Attribute, NodeTest::Name(n)) => Ok((None, Some(n.clone()))),
            other => Err(PlanError::Unsupported(format!("predicate step {other:?}"))),
        },
        more => Err(PlanError::Unsupported(format!(
            "deep predicate path ({} steps)",
            more.len()
        ))),
    }
}

fn num_cmp(op: CmpOp) -> NumCmp {
    match op {
        CmpOp::Eq => NumCmp::Eq,
        CmpOp::Ne => NumCmp::Ne,
        CmpOp::Lt => NumCmp::Lt,
        CmpOp::Le => NumCmp::Le,
        CmpOp::Gt => NumCmp::Gt,
        CmpOp::Ge => NumCmp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, EvalContext, Item};
    use crate::parser::parse_query;
    use mct_core::MctDatabase;

    /// Figure-2-like database for planner vs interpreter comparison.
    fn stored() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let genre = db.new_element("movie-genre", red);
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let gname = db.new_element("name", red);
        db.set_content(gname, "Comedy");
        db.append_child(genre, gname, red);
        let award = db.new_element("movie-award", green);
        db.append_child(McNodeId::DOCUMENT, award, green);
        let aname = db.new_element("name", green);
        db.set_content(aname, "Oscar");
        db.append_child(award, aname, green);
        for i in 0..12 {
            let m = db.new_element("movie", red);
            db.set_attr(m, "id", &format!("m{i}"));
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i} {}", if i % 3 == 0 { "Eve" } else { "Day" }));
            db.append_child(m, name, red);
            if i % 2 == 0 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
                let votes = db.new_element("votes", green);
                db.set_content(votes, &(i * 2).to_string());
                db.append_child(m, votes, green);
            }
        }
        StoredDb::build(db, 16 * 1024 * 1024).unwrap()
    }

    fn plan_nodes(s: &mut StoredDb, text: &str) -> Vec<u32> {
        let Expr::Path(p) = parse_query(text).unwrap() else {
            panic!("not a bare path")
        };
        let plan = plan_path(s, &p, true).unwrap();
        let out = plan.execute(s).unwrap();
        let mut v: Vec<u32> = out.iter().map(|t| t[0].node.0).collect();
        v.sort_unstable();
        v
    }

    fn interp_nodes(s: &mut StoredDb, text: &str) -> Vec<u32> {
        let e = parse_query(text).unwrap();
        let mut ctx = EvalContext::new(s);
        let out = eval(&mut ctx, &e).unwrap();
        let mut v: Vec<u32> = out
            .iter()
            .filter_map(|i| match i {
                Item::Node(n, _) => Some(n.0),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn planner_matches_interpreter_single_color() {
        let mut s = stored();
        for q in [
            r#"document("m")/{red}descendant::movie"#,
            r#"document("m")/{red}descendant::movie-genre/{red}child::movie"#,
            r#"document("m")/{red}descendant::movie/{red}child::name"#,
            r#"document("m")/{red}descendant::movie[contains({red}child::name, "Eve")]"#,
            r#"document("m")/{green}descendant::movie[{green}child::votes > 8]"#,
            r#"document("m")/{red}descendant::movie[@id = "m7"]"#,
        ] {
            assert_eq!(plan_nodes(&mut s, q), interp_nodes(&mut s, q), "{q}");
        }
    }

    #[test]
    fn planner_matches_interpreter_with_crossing() {
        let mut s = stored();
        let q = r#"document("m")/{red}descendant::movie-genre/{red}descendant::movie/{green}parent::movie-award"#;
        assert_eq!(plan_nodes(&mut s, q), interp_nodes(&mut s, q));
    }

    #[test]
    fn cross_tree_stage_filters_to_target_color() {
        let mut s = stored();
        // Red movies -> green subtree scan (only even movies survive).
        let q = r#"document("m")/{red}descendant::movie/{green}child::votes"#;
        let via_plan = plan_nodes(&mut s, q);
        let via_interp = interp_nodes(&mut s, q);
        assert_eq!(via_plan, via_interp);
        assert_eq!(via_plan.len(), 6);
    }

    #[test]
    fn content_entry_rewrite_fires() {
        let mut s = stored();
        let Expr::Path(p) = parse_query(
            r#"document("m")/{red}descendant::movie[{red}child::name = "Movie 3 Eve"]"#,
        )
        .unwrap() else {
            panic!()
        };
        let plan = plan_path(&s, &p, true).unwrap();
        let text = plan.explain(&s);
        assert!(text.contains("content-index entry"), "{text}");
        let out = plan.execute(&mut s).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn explain_is_readable() {
        let s = stored();
        let Expr::Path(p) = parse_query(
            r#"document("m")/{green}descendant::movie[{green}child::votes > 8]/{red}child::name"#,
        )
        .unwrap() else {
            panic!()
        };
        let plan = plan_path(&s, &p, false).unwrap();
        let text = plan.explain(&s);
        assert!(text.contains("holistic chain join"), "{text}");
        assert!(text.contains("cross-tree join"), "{text}");
    }

    #[test]
    fn parallel_execution_is_byte_identical() {
        let mut s = stored();
        for q in [
            r#"document("m")/{red}descendant::movie/{red}child::name"#,
            r#"document("m")/{red}descendant::movie[contains({red}child::name, "Eve")]"#,
            r#"document("m")/{red}descendant::movie/{green}child::votes"#,
            r#"document("m")/{green}descendant::movie[{green}child::votes > 8]/{red}child::name"#,
        ] {
            let Expr::Path(p) = parse_query(q).unwrap() else { panic!("{q}") };
            let plan = plan_path(&s, &p, true).unwrap();
            let seq = plan.execute(&mut s).unwrap();
            for threads in [2, 4] {
                let par = plan.execute_parallel(&mut s, threads).unwrap();
                assert_eq!(par, seq, "{q} threads={threads}");
            }
            let (analyzed, report) = plan.execute_analyze_parallel(&mut s, 4).unwrap();
            assert_eq!(analyzed, seq, "{q} analyze");
            assert_eq!(report.rows as usize, seq.len());
        }
    }

    #[test]
    fn execute_shared_matches_mut_execution() {
        let mut s = stored();
        for q in [
            r#"document("m")/{red}descendant::movie/{red}child::name"#,
            r#"document("m")/{green}descendant::movie[{green}child::votes > 8]/{red}child::name"#,
        ] {
            let Expr::Path(p) = parse_query(q).unwrap() else { panic!("{q}") };
            let plan = plan_path(&s, &p, true).unwrap();
            let seq = plan.execute(&mut s).unwrap();
            plan.prepare(&mut s);
            let shared = plan.execute_shared(&s, 2, None).unwrap();
            assert_eq!(shared, seq, "{q}");
        }
    }

    #[test]
    fn execute_shared_analyze_matches_and_reports_stages() {
        let mut s = stored();
        let q = r#"document("m")/{green}descendant::movie[{green}child::votes > 8]/{red}child::name"#;
        let Expr::Path(p) = parse_query(q).unwrap() else { panic!("{q}") };
        let plan = plan_path(&s, &p, true).unwrap();
        let seq = plan.execute(&mut s).unwrap();
        plan.prepare(&mut s);
        let (shared, report) = plan.execute_shared_analyze(&s, 2, None).unwrap();
        assert_eq!(shared, seq, "analyze must not change the result");
        assert_eq!(report.rows as usize, seq.len());
        assert!(!report.stages.is_empty());
        // The rendered tree is the same shape EXPLAIN prints, with
        // actuals appended per stage.
        let text = report.render();
        assert!(text.contains("holistic chain join"), "{text}");
        assert!(text.contains("rows "), "{text}");
        assert!(text.contains("total: "), "{text}");
    }

    #[test]
    fn execute_shared_refuses_dirty_colors() {
        let mut s = stored();
        let Expr::Path(p) =
            parse_query(r#"document("m")/{red}descendant::movie"#).unwrap()
        else {
            panic!()
        };
        let plan = plan_path(&s, &p, true).unwrap();
        plan.prepare(&mut s);
        // Dirty the red tree behind the plan's back.
        let red = s.db.color("red").unwrap();
        let m = s.db.new_element("movie", red);
        let genre = s.postings_named(red, "movie-genre").unwrap()[0].node;
        s.db.append_child(genre, m, red);
        assert!(s.db.is_dirty(red));
        assert!(plan.execute_shared(&s, 1, None).is_err(), "must not panic");
        s.ensure_all_annotated().unwrap();
        assert!(plan.execute_shared(&s, 1, None).is_ok());
    }

    #[test]
    fn cancelled_execution_returns_cancelled() {
        let mut s = stored();
        let Expr::Path(p) =
            parse_query(r#"document("m")/{red}descendant::movie/{red}child::name"#).unwrap()
        else {
            panic!()
        };
        let plan = plan_path(&s, &p, true).unwrap();
        plan.prepare(&mut s);
        let token = CancelToken::new();
        token.cancel();
        let r = plan.execute_shared(&s, 2, Some(&token));
        assert!(matches!(r, Err(StorageError::Cancelled)), "{r:?}");
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        let s = stored();
        let Expr::Path(p) = parse_query(r#"$v/{red}child::movie"#).unwrap() else {
            panic!()
        };
        assert!(matches!(
            plan_path(&s, &p, true),
            Err(PlanError::Unsupported(_))
        ));
        let Expr::Path(p2) =
            parse_query(r#"document("m")/{red}descendant::movie/{red}ancestor::movie-genre"#)
                .unwrap()
        else {
            panic!()
        };
        assert!(plan_path(&s, &p2, true).is_err(), "ancestor not planned");
    }

    #[test]
    fn unknown_color_is_reported() {
        let s = stored();
        let Expr::Path(p) = parse_query(r#"document("m")/{mauve}descendant::movie"#).unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            plan_path(&s, &p, true),
            Err(PlanError::UnknownColor(_))
        ));
    }
}
