//! Holistic twig joins for *branching* patterns (TwigStack, after
//! Bruno, Koudas & Srivastava \[8\], the paper's citation for optimal
//! XML pattern matching).
//!
//! [`crate::ops::holistic_path_join`] covers linear chains; this
//! module matches full tree patterns ("twigs") like
//!
//! ```text
//!         movie
//!        /      \
//!     name      movie-role
//!                   |
//!                 name
//! ```
//!
//! The algorithm follows TwigStack's structure: one stack of open
//! intervals per query node, elements consumed in global document
//! order (which keeps every open ancestor on its stack), root-to-leaf
//! path solutions emitted at leaf pushes, and the per-leaf solutions
//! merged on their shared branch prefixes. We keep TwigStack's data
//! structures but not its skip-ahead `getNext` refinement — partial
//! paths that fail to join across branches are filtered at the merge,
//! trading its sub-optimality guarantee for simplicity. Parent-child
//! edges are verified during enumeration (the classic post-filter).
//!
//! The enumeration phase here merge-joins the per-leaf path solutions
//! through their shared branch prefixes, which is simple and correct;
//! for the paper's workloads (small twigs, selective predicates) it is
//! entirely adequate.

use crate::ops::{Rel, Tuple};
use mct_core::StructRef;

/// A query node of a twig pattern.
#[derive(Clone, Debug)]
pub struct TwigNode {
    /// Element tag to match.
    pub tag: String,
    /// Edges to child pattern nodes.
    pub children: Vec<(Rel, TwigNode)>,
}

impl TwigNode {
    /// Leaf pattern node.
    pub fn leaf(tag: &str) -> TwigNode {
        TwigNode {
            tag: tag.to_string(),
            children: Vec::new(),
        }
    }

    /// Internal pattern node.
    pub fn node(tag: &str, children: Vec<(Rel, TwigNode)>) -> TwigNode {
        TwigNode {
            tag: tag.to_string(),
            children,
        }
    }

    /// Number of pattern nodes (columns of the output tuples).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }

    /// Pre-order list of tags (output column order).
    pub fn tags(&self) -> Vec<&str> {
        let mut out = vec![self.tag.as_str()];
        for (_, c) in &self.children {
            out.extend(c.tags());
        }
        out
    }
}

/// Match `pattern` against per-pattern-node posting lists (pre-order:
/// `lists[i]` belongs to the i-th pattern node in pre-order). Returns
/// one tuple per twig match, columns in pattern pre-order.
pub fn holistic_twig_join(pattern: &TwigNode, lists: &[Vec<StructRef>]) -> Vec<Tuple> {
    assert_eq!(
        lists.len(),
        pattern.size(),
        "one posting list per pattern node"
    );
    // Flatten the pattern: nodes in pre-order with parent indices.
    let mut nodes: Vec<FlatNode> = Vec::with_capacity(lists.len());
    flatten(pattern, usize::MAX, Rel::Descendant, &mut nodes);

    let n = nodes.len();
    let mut cursors = vec![0usize; n];
    let mut stacks: Vec<Vec<(StructRef, usize)>> = vec![Vec::new(); n];
    // Path solutions per leaf: tuples [root, ..., leaf] in root-first order.
    let mut leaf_paths: Vec<Vec<Vec<StructRef>>> = vec![Vec::new(); n];

    while let Some(q) = get_next(&nodes, lists, &mut cursors) {
        let cur = lists[q][cursors[q]];
        // Clean all stacks of intervals that ended before cur starts.
        for st in stacks.iter_mut() {
            while let Some(&(top, _)) = st.last() {
                if top.code.end < cur.code.start {
                    st.pop();
                } else {
                    break;
                }
            }
        }
        let parent = nodes[q].parent;
        if parent == usize::MAX || !stacks[parent].is_empty() {
            let ptop = if parent == usize::MAX {
                0
            } else {
                stacks[parent].len() - 1
            };
            stacks[q].push((cur, ptop));
            if nodes[q].is_leaf {
                emit_paths(&nodes, &stacks, q, stacks[q].len() - 1, &mut leaf_paths[q]);
            }
        }
        cursors[q] += 1;
    }

    merge_leaf_paths(&nodes, leaf_paths)
}

#[derive(Clone, Debug)]
struct FlatNode {
    parent: usize,
    rel: Rel, // edge from parent
    children: Vec<usize>,
    is_leaf: bool,
    /// Path from the root to this node (indices), root first.
    root_path: Vec<usize>,
}

fn flatten(t: &TwigNode, parent: usize, rel: Rel, out: &mut Vec<FlatNode>) -> usize {
    let me = out.len();
    let root_path = if parent == usize::MAX {
        vec![me]
    } else {
        let mut p = out[parent].root_path.clone();
        p.push(me);
        p
    };
    out.push(FlatNode {
        parent,
        rel,
        children: Vec::new(),
        is_leaf: t.children.is_empty(),
        root_path,
    });
    for (r, c) in &t.children {
        let ci = flatten(c, me, *r, out);
        out[me].children.push(ci);
    }
    me
}

/// Pick the next element to process: the query node whose head has
/// the globally smallest `start`. Processing in global document order
/// maintains the invariant that every open ancestor of the next
/// element is on its stack — the correctness core of TwigStack (we
/// forgo its skip-ahead optimization; merging filters partial paths).
fn get_next(
    _nodes: &[FlatNode],
    lists: &[Vec<StructRef>],
    cursors: &mut [usize],
) -> Option<usize> {
    let mut best = None;
    let mut best_start = u32::MAX;
    for (q, list) in lists.iter().enumerate() {
        if cursors[q] < list.len() {
            let start = list[cursors[q]].code.start;
            if start < best_start {
                best_start = start;
                best = Some(q);
            }
        }
    }
    best
}

/// Emit all root-to-leaf path solutions ending at stack entry `idx` of
/// leaf `q` (honouring the per-edge relations).
fn emit_paths(
    nodes: &[FlatNode],
    stacks: &[Vec<(StructRef, usize)>],
    q: usize,
    idx: usize,
    out: &mut Vec<Vec<StructRef>>,
) {
    fn rec(
        nodes: &[FlatNode],
        stacks: &[Vec<(StructRef, usize)>],
        q: usize,
        idx: usize,
    ) -> Vec<Vec<StructRef>> {
        let (r, ptop) = stacks[q][idx];
        let parent = nodes[q].parent;
        if parent == usize::MAX {
            return vec![vec![r]];
        }
        let bound = ptop.min(stacks[parent].len().saturating_sub(1));
        let mut result = Vec::new();
        for i in 0..=bound {
            let (a, _) = stacks[parent][i];
            if !a.code.is_ancestor_of(&r.code) {
                continue;
            }
            if nodes[q].rel == Rel::Child && a.code.level + 1 != r.code.level {
                continue;
            }
            for mut p in rec(nodes, stacks, parent, i) {
                p.push(r);
                result.push(p);
            }
        }
        result
    }
    out.extend(rec(nodes, stacks, q, idx));
}

/// Merge per-leaf path solutions on their shared branch prefixes into
/// full twig matches, columns in pattern pre-order.
fn merge_leaf_paths(nodes: &[FlatNode], leaf_paths: Vec<Vec<Vec<StructRef>>>) -> Vec<Tuple> {
    let n = nodes.len();
    let leaves: Vec<usize> = (0..n).filter(|&i| nodes[i].is_leaf).collect();
    // Start with the first leaf's paths as partial assignments
    // (pattern-node index -> element).
    let mut partials: Vec<Vec<Option<StructRef>>> = Vec::new();
    let first = leaves[0];
    for p in &leaf_paths[first] {
        let mut a = vec![None; n];
        for (slot, r) in nodes[first].root_path.iter().zip(p) {
            a[*slot] = Some(*r);
        }
        partials.push(a);
    }
    for &leaf in &leaves[1..] {
        let mut next = Vec::new();
        for a in &partials {
            for p in &leaf_paths[leaf] {
                // Compatible iff shared slots agree.
                let mut ok = true;
                for (slot, r) in nodes[leaf].root_path.iter().zip(p) {
                    if let Some(existing) = a[*slot] {
                        if existing.node != r.node {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let mut merged = a.clone();
                    for (slot, r) in nodes[leaf].root_path.iter().zip(p) {
                        merged[*slot] = Some(*r);
                    }
                    next.push(merged);
                }
            }
        }
        partials = next;
    }
    partials
        .into_iter()
        .map(|a| a.into_iter().map(|r| r.expect("full assignment")).collect())
        .collect()
}

/// Naive oracle: enumerate all combinations and check edges directly.
pub fn naive_twig_join(pattern: &TwigNode, lists: &[Vec<StructRef>]) -> Vec<Tuple> {
    let mut nodes = Vec::new();
    flatten(pattern, usize::MAX, Rel::Descendant, &mut nodes);
    let n = nodes.len();
    let mut out = Vec::new();
    let mut pick = vec![0usize; n];
    'outer: loop {
        // Test the current combination.
        let tuple: Vec<StructRef> = (0..n).map(|i| lists[i][pick[i]]).collect();
        let mut ok = true;
        for (i, node) in nodes.iter().enumerate() {
            if node.parent == usize::MAX {
                continue;
            }
            let a = tuple[node.parent].code;
            let d = tuple[i].code;
            let hit = match node.rel {
                Rel::Child => a.is_parent_of(&d),
                Rel::Descendant => a.is_ancestor_of(&d),
            };
            if !hit {
                ok = false;
                break;
            }
        }
        if ok {
            out.push(tuple);
        }
        // Advance odometer.
        for i in (0..n).rev() {
            pick[i] += 1;
            if pick[i] < lists[i].len() {
                continue 'outer;
            }
            pick[i] = 0;
            if i == 0 {
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_core::{McNodeId, MctDatabase, StoredDb};

    /// movie(name, role(name)) data with extra noise elements.
    fn stored() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let root = db.new_element("genre", red);
        db.append_child(McNodeId::DOCUMENT, root, red);
        for i in 0..6 {
            let m = db.new_element("movie", red);
            db.append_child(root, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            for r in 0..(i % 3) {
                let role = db.new_element("movie-role", red);
                db.append_child(m, role, red);
                let rn = db.new_element("name", red);
                db.set_content(rn, &format!("Role {i}.{r}"));
                db.append_child(role, rn, red);
            }
        }
        StoredDb::build(db, 16 * 1024 * 1024).unwrap()
    }

    fn lists(s: &mut StoredDb, pattern: &TwigNode) -> Vec<Vec<StructRef>> {
        let red = s.db.color("red").unwrap();
        pattern
            .tags()
            .iter()
            .map(|t| s.postings_named(red, t).unwrap())
            .collect()
    }

    fn norm(mut v: Vec<Tuple>) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = v
            .drain(..)
            .map(|t| t.iter().map(|r| r.node.0).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn branching_twig_matches_oracle() {
        let mut s = stored();
        // movie[name][movie-role/name] — the paper's Q3 shape.
        let pattern = TwigNode::node(
            "movie",
            vec![
                (Rel::Child, TwigNode::leaf("name")),
                (
                    Rel::Child,
                    TwigNode::node("movie-role", vec![(Rel::Child, TwigNode::leaf("name"))]),
                ),
            ],
        );
        let ls = lists(&mut s, &pattern);
        let fast = holistic_twig_join(&pattern, &ls);
        let slow = naive_twig_join(&pattern, &ls);
        assert_eq!(norm(fast), norm(slow));
        assert!(!naive_twig_join(&pattern, &ls).is_empty());
    }

    #[test]
    fn descendant_edges_twig() {
        let mut s = stored();
        // genre[//name][//movie-role] — branching with descendant edges.
        let pattern = TwigNode::node(
            "genre",
            vec![
                (Rel::Descendant, TwigNode::leaf("movie-role")),
                (Rel::Descendant, TwigNode::leaf("movie")),
            ],
        );
        let ls = lists(&mut s, &pattern);
        let fast = holistic_twig_join(&pattern, &ls);
        let slow = naive_twig_join(&pattern, &ls);
        assert_eq!(norm(fast), norm(slow));
    }

    #[test]
    fn chain_twig_agrees_with_path_join() {
        let mut s = stored();
        let pattern = TwigNode::node(
            "movie",
            vec![(
                Rel::Child,
                TwigNode::node("movie-role", vec![(Rel::Child, TwigNode::leaf("name"))]),
            )],
        );
        let ls = lists(&mut s, &pattern);
        let twig = holistic_twig_join(&pattern, &ls);
        let chain = crate::ops::holistic_path_join(
            &ls,
            &[Rel::Child, Rel::Child],
        );
        assert_eq!(norm(twig), norm(chain));
    }

    #[test]
    fn empty_branch_kills_all_matches() {
        let mut s = stored();
        let pattern = TwigNode::node(
            "movie",
            vec![
                (Rel::Child, TwigNode::leaf("name")),
                (Rel::Child, TwigNode::leaf("nonexistent")),
            ],
        );
        let mut ls = lists(&mut s, &pattern);
        assert!(ls[2].is_empty());
        let fast = holistic_twig_join(&pattern, &ls);
        assert!(fast.is_empty());
        ls.pop();
        // (sanity: with the branch removed there ARE matches)
        let chain = crate::ops::holistic_path_join(&ls[..2], &[Rel::Child]);
        assert!(!chain.is_empty());
    }

    #[test]
    fn single_node_twig() {
        let mut s = stored();
        let pattern = TwigNode::leaf("movie");
        let ls = lists(&mut s, &pattern);
        let out = holistic_twig_join(&pattern, &ls);
        assert_eq!(out.len(), 6);
    }
}
