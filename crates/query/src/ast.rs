//! Abstract syntax for the MCXQuery subset (§4).
//!
//! MCXQuery is XQuery with every location step optionally prefixed by a
//! `{color}` specification (Figure 6's grammar change), plus the
//! `createColor` / `createCopy` functions and color-aware updates.
//! This module also computes the query-complexity metrics of the
//! paper's Figures 11 and 12 (number of path expressions, number of
//! variable bindings) directly from the AST.

use std::fmt;

/// An XPath axis (the subset the paper's queries use; MCXQuery
/// conservatively includes the reverse axes the paper wishes for in
/// §2.2, since our engine supports them).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `self::`
    SelfAxis,
    /// `attribute::` / `@`
    Attribute,
}

impl Axis {
    /// Unabbreviated syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
        }
    }
}

/// A node test within a step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeTest {
    /// A name test, e.g. `movie`.
    Name(String),
    /// `node()` — any node.
    AnyNode,
    /// `*` — any element.
    AnyElement,
}

/// One location step: optional color, axis, node test, predicates.
#[derive(Clone, PartialEq, Debug)]
pub struct Step {
    /// The `{color}` specification; `None` inherits the context color
    /// (plain XQuery over a single-colored database).
    pub color: Option<String>,
    /// Navigation axis.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Zero or more `[...]` predicates.
    pub predicates: Vec<Expr>,
}

/// Where a path expression starts.
#[derive(Clone, PartialEq, Debug)]
pub enum PathStart {
    /// `document("uri")` — the document node.
    Document(String),
    /// `$var`.
    Var(String),
    /// The context item (relative paths inside predicates).
    Context,
}

/// A path expression: a start plus location steps.
#[derive(Clone, PartialEq, Debug)]
pub struct PathExpr {
    /// Start point.
    pub start: PathStart,
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

/// Comparison operators (general comparisons, existential over
/// sequences as in XPath).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Literal values.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
}

/// A FLWOR clause.
#[derive(Clone, PartialEq, Debug)]
pub enum FlworClause {
    /// `for $v in expr`
    For(String, Expr),
    /// `let $v := expr`
    Let(String, Expr),
}

/// A FLWOR expression.
#[derive(Clone, PartialEq, Debug)]
pub struct Flwor {
    /// The for/let clauses in order.
    pub clauses: Vec<FlworClause>,
    /// Optional `where`.
    pub where_: Option<Box<Expr>>,
    /// `order by` keys with ascending flag.
    pub order_by: Vec<(Expr, bool)>,
    /// The `return` expression.
    pub ret: Box<Expr>,
}

/// Items inside an element constructor.
#[derive(Clone, PartialEq, Debug)]
pub enum ConstructorItem {
    /// Literal text.
    Text(String),
    /// `{ expr }` — an enclosed expression (identity-preserving, §4.2).
    Enclosed(Expr),
    /// A nested element constructor.
    Element(Constructor),
}

/// `<name attr="...">...</name>` constructor.
#[derive(Clone, PartialEq, Debug)]
pub struct Constructor {
    /// Element name.
    pub name: String,
    /// Attributes (literal values only in this subset).
    pub attrs: Vec<(String, String)>,
    /// Content items.
    pub children: Vec<ConstructorItem>,
}

/// An MCXQuery expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A path expression.
    Path(PathExpr),
    /// A literal.
    Lit(Literal),
    /// General comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Function call: `contains`, `count`, `distinct-values`,
    /// `createColor`, `createCopy`, `not`, `empty`.
    Call(String, Vec<Expr>),
    /// FLWOR.
    Flwor(Flwor),
    /// Element constructor.
    Ctor(Constructor),
    /// Parenthesized sequence (comma operator).
    Sequence(Vec<Expr>),
}

/// An update action (after Tatarinov et al., the paper's reference 25,
/// extended with colors
/// as §4.3 describes).
#[derive(Clone, PartialEq, Debug)]
pub enum UpdateAction {
    /// `delete $child` — remove the target nodes from the colored tree
    /// they were located in (subtree-scoped).
    Delete(Expr),
    /// `insert <ctor> into $target` semantics carried by the enclosing
    /// update binding; the expression is the content to insert.
    Insert(Expr),
    /// `replace value of $x with expr`.
    ReplaceValue(Expr, Expr),
}

/// `for/let/where ... update $target { actions }`.
#[derive(Clone, PartialEq, Debug)]
pub struct UpdateStmt {
    /// Binding clauses.
    pub clauses: Vec<FlworClause>,
    /// Optional filter.
    pub where_: Option<Box<Expr>>,
    /// The variable naming the update target.
    pub target: String,
    /// Actions applied per binding tuple.
    pub actions: Vec<UpdateAction>,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Unparsing (Display): parse(format!("{e}")) reproduces `e`
// ---------------------------------------------------------------------------

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::AnyNode => f.write_str("node()"),
            NodeTest::AnyElement => f.write_str("*"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = &self.color {
            write!(f, "{{{c}}}")?;
        }
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Document(uri) => write!(f, "document(\"{uri}\")")?,
            PathStart::Var(v) => write!(f, "${v}")?,
            PathStart::Context => {
                // Relative path: steps join with '/' and no leading dot
                // when there is at least one step.
                if self.steps.is_empty() {
                    return f.write_str(".");
                }
                let mut first = true;
                for s in &self.steps {
                    if !first {
                        f.write_str("/")?;
                    }
                    write!(f, "{s}")?;
                    first = false;
                }
                return Ok(());
            }
        }
        for s in &self.steps {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

impl fmt::Display for Constructor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.name)?;
        for (n, v) in &self.attrs {
            write!(f, " {n}=\"{v}\"")?;
        }
        if self.children.is_empty() {
            return f.write_str("/>");
        }
        f.write_str(">")?;
        for c in &self.children {
            match c {
                ConstructorItem::Text(t) => f.write_str(t)?,
                ConstructorItem::Enclosed(e) => write!(f, " {{ {e} }} ")?,
                ConstructorItem::Element(inner) => write!(f, "{inner}")?,
            }
        }
        write!(f, "</{}>", self.name)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Expr::And(a, b) => write!(f, "{a} and {b}"),
            Expr::Or(a, b) => write!(f, "{a} or {b}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Flwor(fl) => {
                for cl in &fl.clauses {
                    match cl {
                        FlworClause::For(v, e) => write!(f, "for ${v} in {e} ")?,
                        FlworClause::Let(v, e) => write!(f, "let ${v} := {e} ")?,
                    }
                }
                if let Some(w) = &fl.where_ {
                    write!(f, "where {w} ")?;
                }
                for (i, (k, asc)) in fl.order_by.iter().enumerate() {
                    if i == 0 {
                        f.write_str("order by ")?;
                    } else {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}{}", if *asc { "" } else { " descending" })?;
                    if i + 1 == fl.order_by.len() {
                        f.write_str(" ")?;
                    }
                }
                write!(f, "return {}", fl.ret)
            }
            Expr::Ctor(c) => write!(f, "{c}"),
            Expr::Sequence(items) => {
                f.write_str("(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cl in &self.clauses {
            match cl {
                FlworClause::For(v, e) => write!(f, "for ${v} in {e} ")?,
                FlworClause::Let(v, e) => write!(f, "let ${v} := {e} ")?,
            }
        }
        if let Some(w) = &self.where_ {
            write!(f, "where {w} ")?;
        }
        write!(f, "update ${} {{ ", self.target)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match a {
                UpdateAction::Delete(e) => write!(f, "delete {e}")?,
                UpdateAction::Insert(e) => write!(f, "insert {e}")?,
                UpdateAction::ReplaceValue(t, v) => write!(f, "replace value of {t} with {v}")?,
            }
        }
        f.write_str(" }")
    }
}

// ---------------------------------------------------------------------------
// Complexity metrics (Figures 11 & 12)
// ---------------------------------------------------------------------------

/// Query-specification complexity, the paper's proxy for simplicity
/// (§7.3): path-expression count and variable-binding count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Complexity {
    /// Number of path expressions in the query.
    pub path_exprs: usize,
    /// Number of variable bindings (`for`/`let` clauses).
    pub var_bindings: usize,
}

/// Measure an expression's complexity.
pub fn complexity(e: &Expr) -> Complexity {
    let mut c = Complexity::default();
    walk(e, &mut c);
    c
}

/// Measure an update statement's complexity.
pub fn update_complexity(u: &UpdateStmt) -> Complexity {
    let mut c = Complexity::default();
    for cl in &u.clauses {
        c.var_bindings += 1;
        match cl {
            FlworClause::For(_, e) | FlworClause::Let(_, e) => walk(e, &mut c),
        }
    }
    if let Some(w) = &u.where_ {
        walk(w, &mut c);
    }
    for a in &u.actions {
        match a {
            UpdateAction::Delete(e) | UpdateAction::Insert(e) => walk(e, &mut c),
            UpdateAction::ReplaceValue(a, b) => {
                walk(a, &mut c);
                walk(b, &mut c);
            }
        }
    }
    c
}

fn walk(e: &Expr, c: &mut Complexity) {
    match e {
        Expr::Path(p) => {
            c.path_exprs += 1;
            for s in &p.steps {
                for pred in &s.predicates {
                    walk(pred, c);
                }
            }
        }
        Expr::Lit(_) => {}
        Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            walk(a, c);
            walk(b, c);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk(a, c);
            }
        }
        Expr::Flwor(f) => {
            for cl in &f.clauses {
                c.var_bindings += 1;
                match cl {
                    FlworClause::For(_, e) | FlworClause::Let(_, e) => walk(e, c),
                }
            }
            if let Some(w) = &f.where_ {
                walk(w, c);
            }
            for (k, _) in &f.order_by {
                walk(k, c);
            }
            walk(&f.ret, c);
        }
        Expr::Ctor(ct) => walk_ctor(ct, c),
        Expr::Sequence(items) => {
            for i in items {
                walk(i, c);
            }
        }
    }
}

fn walk_ctor(ct: &Constructor, c: &mut Complexity) {
    for item in &ct.children {
        match item {
            ConstructorItem::Text(_) => {}
            ConstructorItem::Enclosed(e) => walk(e, c),
            ConstructorItem::Element(inner) => walk_ctor(inner, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_step(color: Option<&str>, axis: Axis, name: &str) -> Step {
        Step {
            color: color.map(str::to_string),
            axis,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    #[test]
    fn complexity_counts_nested_paths_in_predicates() {
        // //movie[child::name = "Eve"] : 2 path expressions.
        let inner = Expr::Cmp(
            Box::new(Expr::Path(PathExpr {
                start: PathStart::Context,
                steps: vec![name_step(None, Axis::Child, "name")],
            })),
            CmpOp::Eq,
            Box::new(Expr::Lit(Literal::Str("Eve".into()))),
        );
        let outer = Expr::Path(PathExpr {
            start: PathStart::Document("mdb.xml".into()),
            steps: vec![Step {
                color: Some("red".into()),
                axis: Axis::Descendant,
                test: NodeTest::Name("movie".into()),
                predicates: vec![inner],
            }],
        });
        let c = complexity(&outer);
        assert_eq!(c.path_exprs, 2);
        assert_eq!(c.var_bindings, 0);
    }

    #[test]
    fn complexity_counts_flwor_bindings() {
        let path = |v: &str| {
            Expr::Path(PathExpr {
                start: PathStart::Var(v.into()),
                steps: vec![],
            })
        };
        let f = Expr::Flwor(Flwor {
            clauses: vec![
                FlworClause::For("m".into(), path("d")),
                FlworClause::For("a".into(), path("d")),
                FlworClause::Let("x".into(), path("m")),
            ],
            where_: Some(Box::new(Expr::Cmp(
                Box::new(path("m")),
                CmpOp::Eq,
                Box::new(path("a")),
            ))),
            order_by: vec![],
            ret: Box::new(path("x")),
        });
        let c = complexity(&f);
        assert_eq!(c.var_bindings, 3);
        assert_eq!(c.path_exprs, 6);
    }

    #[test]
    fn update_complexity_counts_clauses_and_actions() {
        let path = |v: &str| {
            Expr::Path(PathExpr {
                start: PathStart::Var(v.into()),
                steps: vec![],
            })
        };
        let u = UpdateStmt {
            clauses: vec![FlworClause::For("m".into(), path("d"))],
            where_: Some(Box::new(Expr::Cmp(
                Box::new(path("m")),
                CmpOp::Eq,
                Box::new(Expr::Lit(Literal::Str("x".into()))),
            ))),
            target: "m".into(),
            actions: vec![UpdateAction::ReplaceValue(
                path("m"),
                Expr::Lit(Literal::Str("y".into())),
            )],
        };
        let c = update_complexity(&u);
        assert_eq!(c.var_bindings, 1);
        // clause path + where path + replace-target path.
        assert_eq!(c.path_exprs, 3);
    }

    #[test]
    fn constructor_children_are_walked() {
        let ctor = Expr::Ctor(Constructor {
            name: "m-name".into(),
            attrs: vec![],
            children: vec![
                ConstructorItem::Text("label: ".into()),
                ConstructorItem::Enclosed(Expr::Path(PathExpr {
                    start: PathStart::Var("m".into()),
                    steps: vec![name_step(Some("red"), Axis::Child, "name")],
                })),
            ],
        });
        assert_eq!(complexity(&ctor).path_exprs, 1);
    }
}
