//! Morsel-driven parallel execution for the read-only operator path.
//!
//! The repo vendors no thread-pool crate, so [`run_morsels`] *is* the
//! pool: a [`std::thread::scope`] of workers pulling chunk indexes
//! from a shared atomic cursor until the work list drains (the
//! morsel-at-a-time scheduling of Leis et al.). Chunk results merge
//! back **in chunk order**, so every parallel operator here is
//! output-identical to its sequential twin in [`crate::ops`].
//!
//! Work is partitioned by node-id range: posting lists and tuple
//! streams are sorted by `code.start`, so a contiguous index chunk is
//! a contiguous range of the colored tree. Two facts make range
//! partitioning exact for structural joins:
//!
//! 1. interval codes are nested-or-disjoint, so every chain match is
//!    rooted at exactly one entry of the root posting list, and
//! 2. all descendants of a root `r` have starts inside
//!    `(r.start, r.end)`, so a chunk only needs the slice of each
//!    inner list covered by its own roots' window.
//!
//! All probes go through `&StoredDb`: the buffer pool is internally
//! synchronized, and callers hoist color annotation before fanning
//! out (see [`crate::plan`]), leaving the fan-out phase read-only.

use crate::ops::{self, Rel, Tuple};
use mct_core::{ColorId, StoredDb, StructRef};
use mct_storage::{DiskManager, StorageError};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A cooperative cancellation token: an explicit [`CancelToken::cancel`]
/// or an elapsed deadline makes every subsequent [`CancelToken::check`]
/// fail with [`StorageError::Cancelled`]. Operators consult the token
/// at morsel boundaries (and the plan driver at stage boundaries), so a
/// cancelled query stops within one morsel's worth of work — the
/// serving layer's per-request deadline mechanism.
///
/// Cloning is cheap (`Arc`); all clones observe the same state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels explicitly.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `timeout` from now.
    pub fn after(timeout: std::time::Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Cancel explicitly; idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline elapsed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// `Err(StorageError::Cancelled)` once cancelled, `Ok(())` before.
    pub fn check(&self) -> mct_storage::Result<()> {
        if self.is_cancelled() {
            Err(StorageError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Check an optional token (the pervasive `cancel: Option<&CancelToken>`
/// parameter): `None` never cancels.
#[inline]
pub fn check_cancel(cancel: Option<&CancelToken>) -> mct_storage::Result<()> {
    match cancel {
        Some(t) => t.check(),
        None => Ok(()),
    }
}

/// Smallest worthwhile morsel: below this, scheduling overhead beats
/// the win, and operators fall back to their sequential twins.
pub const MIN_MORSEL: usize = 64;

/// Split `len` items into contiguous ranges of roughly equal size —
/// about four morsels per worker so fast workers steal the tail, but
/// never smaller than [`MIN_MORSEL`].
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let step = len.div_ceil(threads.max(1) * 4).max(MIN_MORSEL.min(len));
    (0..len.div_ceil(step))
        .map(|i| i * step..((i + 1) * step).min(len))
        .collect()
}

/// Run `work(chunk_index)` for every index in `0..chunks` across up to
/// `threads` scoped worker threads, returning the chunk outputs in
/// chunk order. On failure the error of the lowest-indexed failing
/// chunk is returned; workers stop claiming new morsels as soon as any
/// chunk fails.
pub fn run_morsels<R, E, F>(threads: usize, chunks: usize, work: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let threads = threads.max(1).min(chunks);
    if threads <= 1 {
        return (0..chunks).map(&work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let done: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(chunks));
    // Forward the serving layer's request tag (thread-local) into the
    // workers, so spans and diagnostics emitted inside a morsel still
    // name the request they run for.
    let request_id = mct_obs::trace::current_request_id();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _req = mct_obs::trace::request_scope(request_id);
                let mut local = Vec::new();
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks {
                        break;
                    }
                    let r = work(i);
                    if r.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    local.push((i, r));
                }
                done.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let mut results = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    results.sort_by_key(|(i, _)| *i);
    // Every claimed chunk produced a result and claims are sequential,
    // so results are a prefix of 0..chunks containing any error.
    let mut out = Vec::with_capacity(chunks);
    for (_, r) in results {
        out.push(r?);
    }
    debug_assert_eq!(out.len(), chunks, "no error implies full coverage");
    Ok(out)
}

/// Parallel color transition — same contract (and same global
/// `query.crosstree.*` counters) as [`ops::cross_tree_op`]. The input
/// is cut into contiguous morsels; each worker probes the target
/// color's link index through the shared buffer pool and merges its
/// own transition count into the registry once per chunk; the merged
/// output is re-sorted by target-tree start. Output is byte-identical
/// to the sequential operator.
pub fn cross_tree_op_par<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    to: ColorId,
    threads: usize,
    cancel: Option<&CancelToken>,
) -> mct_storage::Result<Vec<Tuple>> {
    check_cancel(cancel)?;
    if threads <= 1 || input.len() < 2 * MIN_MORSEL {
        return ops::cross_tree_op(s, input, col, to);
    }
    let _span = mct_obs::trace::span("crosstree.op_par");
    let calls = mct_obs::counter("query.crosstree.calls");
    let input_rows = mct_obs::counter("query.crosstree.input_rows");
    let output_rows = mct_obs::counter("query.crosstree.output_rows");
    let transitions = mct_obs::counter("query.crosstree.transitions");
    calls.inc();
    input_rows.add(input.len() as u64);
    let ranges = chunk_ranges(input.len(), threads);
    let chunks = run_morsels(threads, ranges.len(), |ci| {
        check_cancel(cancel)?;
        let range = ranges[ci].clone();
        let mut out = Vec::with_capacity(range.len());
        for t in &input[range] {
            if let Some(code) = s.link_probe(t[col].node, to)? {
                let mut t = t.clone();
                t[col] = StructRef { node: t[col].node, code };
                out.push(t);
            }
        }
        // Per-worker delta, merged into the shared atomic per chunk.
        transitions.add(out.len() as u64);
        Ok::<_, mct_storage::StorageError>(out)
    })?;
    let mut out: Vec<Tuple> = chunks.into_iter().flatten().collect();
    out.sort_by_key(|t| t[col].code.start);
    output_rows.add(out.len() as u64);
    Ok(out)
}

/// Parallel PathStack chain join over `lists` (see
/// [`ops::holistic_path_join`]). The root list is cut into contiguous
/// morsels; each inner list is narrowed by binary search to the
/// chunk's window `[first root start, max root end]`, which covers
/// every descendant of the chunk's roots, and the chunk joins
/// independently. The concatenation (in chunk order) is the exact
/// multiset of the sequential output; tuple order may differ when
/// root subtrees nest across a chunk boundary, so order-sensitive
/// callers re-sort (the planner's Chain stage sorts its projected
/// column, making plan output byte-identical).
pub fn holistic_chain_par(
    lists: &[Vec<StructRef>],
    rels: &[Rel],
    threads: usize,
    cancel: Option<&CancelToken>,
) -> mct_storage::Result<Vec<Tuple>> {
    assert_eq!(lists.len(), rels.len() + 1, "k+1 lists need k relations");
    check_cancel(cancel)?;
    if threads <= 1 || lists.len() == 1 || lists[0].len() < 2 * MIN_MORSEL {
        return Ok(ops::holistic_path_join(lists, rels));
    }
    let roots = &lists[0];
    let ranges = chunk_ranges(roots.len(), threads);
    let chunks = run_morsels(threads, ranges.len(), |ci| {
        check_cancel(cancel)?;
        let chunk_roots = roots[ranges[ci].clone()].to_vec();
        let lo = chunk_roots[0].code.start;
        let hi = chunk_roots.iter().map(|r| r.code.end).max().expect("nonempty chunk");
        let mut sub: Vec<Vec<StructRef>> = Vec::with_capacity(lists.len());
        sub.push(chunk_roots);
        for list in &lists[1..] {
            let from = list.partition_point(|r| r.code.start < lo);
            let to = list.partition_point(|r| r.code.start <= hi);
            sub.push(list[from..to].to_vec());
        }
        Ok::<_, StorageError>(ops::holistic_path_join(&sub, rels))
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_core::{McNodeId, MctDatabase};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 63, 64, 65, 1000, 4097] {
            for threads in [1usize, 2, 4, 8] {
                let ranges = chunk_ranges(len, threads);
                let mut at = 0;
                for r in &ranges {
                    assert_eq!(r.start, at, "contiguous");
                    assert!(r.end > r.start, "nonempty");
                    at = r.end;
                }
                assert_eq!(at, len, "covers len={len}");
            }
        }
    }

    #[test]
    fn morsels_merge_in_chunk_order() {
        let out = run_morsels::<_, std::convert::Infallible, _>(4, 37, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn morsels_propagate_first_error() {
        let ran = AtomicU64::new(0);
        let r = run_morsels(4, 100, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 13 {
                Err(format!("chunk {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "chunk 13");
        assert!(ran.load(Ordering::Relaxed) < 100, "workers stop after a failure");
    }

    #[test]
    fn morsels_single_thread_is_plain_iteration() {
        let out = run_morsels::<_, (), _>(1, 5, Ok).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    /// One red hierarchy, 500 sections each holding a couple of
    /// paragraphs; every third section is also green. Big enough that
    /// the parallel operators actually fan out (> 2·MIN_MORSEL roots).
    fn big_stored() -> mct_core::StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let root = db.new_element("book", red);
        db.append_child(McNodeId::DOCUMENT, root, red);
        let groot = db.new_element("shelf", green);
        db.append_child(McNodeId::DOCUMENT, groot, green);
        for i in 0..500 {
            let s = db.new_element("section", red);
            db.append_child(root, s, red);
            for j in 0..(1 + i % 3) {
                let p = db.new_element("para", red);
                db.set_content(p, &format!("text {i}.{j}"));
                db.append_child(s, p, red);
            }
            if i % 3 == 0 {
                db.add_node_color(s, green);
                db.append_child(groot, s, green);
            }
        }
        mct_core::StoredDb::build(db, 32 * 1024 * 1024).unwrap()
    }

    fn sort_tuples(mut ts: Vec<Tuple>) -> Vec<Tuple> {
        ts.sort_by_key(|t| t.iter().map(|r| r.code.start).collect::<Vec<_>>());
        ts
    }

    #[test]
    fn parallel_chain_matches_sequential() {
        let s = big_stored();
        let red = s.db.color("red").unwrap();
        let sections = s.postings_named(red, "section").unwrap();
        let paras = s.postings_named(red, "para").unwrap();
        assert!(sections.len() >= 2 * MIN_MORSEL, "fixture must fan out");
        let lists = [sections, paras];
        let rels = [Rel::Child];
        let seq = sort_tuples(ops::holistic_path_join(&lists, &rels));
        assert!(!seq.is_empty());
        for threads in [2, 4, 8] {
            let par = sort_tuples(holistic_chain_par(&lists, &rels, threads, None).unwrap());
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_token_aborts_parallel_operators() {
        let s = big_stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let sections = s.postings_named(red, "section").unwrap();
        let paras = s.postings_named(red, "para").unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let lists = [sections.clone(), paras];
        let r = holistic_chain_par(&lists, &[Rel::Child], 4, Some(&token));
        assert!(matches!(r, Err(StorageError::Cancelled)), "{r:?}");
        let input: Vec<Tuple> = sections.into_iter().map(|r| vec![r]).collect();
        let r = cross_tree_op_par(&s, input, 0, green, 4, Some(&token));
        assert!(matches!(r, Err(StorageError::Cancelled)), "{r:?}");
    }

    #[test]
    fn deadline_token_latches_after_expiry() {
        let token = CancelToken::after(std::time::Duration::ZERO);
        assert!(token.check().is_err(), "zero deadline is already expired");
        let far = CancelToken::after(std::time::Duration::from_secs(3600));
        assert!(far.check().is_ok());
        far.cancel();
        assert!(far.check().is_err(), "explicit cancel wins over deadline");
        // Clones share state.
        let clone = token.clone();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn parallel_chain_with_roots_nesting_across_chunks() {
        // 400 nested `div`s: a `div//div` chain where every root's
        // subtree spans every later chunk — the adversarial case for
        // window narrowing.
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let mut parent = McNodeId::DOCUMENT;
        for _ in 0..400 {
            let d = db.new_element("div", c);
            db.append_child(parent, d, c);
            parent = d;
        }
        let s = mct_core::StoredDb::build(db, 32 * 1024 * 1024).unwrap();
        let divs = s.postings_named(c, "div").unwrap();
        let lists = [divs.clone(), divs];
        let rels = [Rel::Descendant];
        let seq = sort_tuples(ops::holistic_path_join(&lists, &rels));
        assert_eq!(seq.len(), 400 * 399 / 2, "all strict ancestor pairs");
        for threads in [2, 4, 8] {
            let par = sort_tuples(holistic_chain_par(&lists, &rels, threads, None).unwrap());
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_cross_tree_is_byte_identical() {
        let s = big_stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let input: Vec<Tuple> = s
            .postings_named(red, "section")
            .unwrap()
            .into_iter()
            .map(|r| vec![r])
            .collect();
        let seq = ops::cross_tree_op(&s, input.clone(), 0, green).unwrap();
        assert!(!seq.is_empty());
        for threads in [2, 4, 8] {
            let par = cross_tree_op_par(&s, input.clone(), 0, green, threads, None).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        // Below 2·MIN_MORSEL the parallel entry points must not spawn.
        let s = big_stored();
        let green = s.db.color("green").unwrap();
        let few: Vec<Tuple> = s
            .postings_named(green, "section")
            .unwrap()
            .into_iter()
            .take(10)
            .map(|r| vec![r])
            .collect();
        let a = cross_tree_op_par(&s, few.clone(), 0, green, 8, None).unwrap();
        let b = ops::cross_tree_op(&s, few, 0, green).unwrap();
        assert_eq!(a, b);
    }
}
