//! The MCXQuery interpreter.
//!
//! Navigational evaluation of parsed expressions against a
//! [`StoredDb`]. This is the *specification-level* evaluator used by
//! examples and tests; the benchmark queries run hand-picked physical
//! plans from [`crate::ops`] instead, exactly as the paper did ("we
//! manually specified the query plan").
//!
//! Semantics implemented from §4:
//!
//! * colored location steps — every step resolves its `{color}` (or
//!   inherits the context's default color) and navigates that tree;
//!   step results come back in the step color's local order;
//! * enclosed expressions **retain node identity** (§4.2);
//! * `createCopy` makes fresh copies; `createColor` adds a color to a
//!   constructed (or existing) sequence, materializing the constructed
//!   edges in that colored tree;
//! * attaching one node twice into the same colored tree raises the
//!   paper's *dynamic error* (the `dupl-problem` example).

use crate::ast::*;
use mct_storage::{DiskManager, MemDisk};
use mct_core::{ColorId, McNodeId, StoredDb};
use std::collections::HashMap;
use std::fmt;

/// An item in the XQuery data model sense. Nodes remember the color
/// of the step that located them (used by updates and ordering).
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A node plus its provenance color.
    Node(McNodeId, Option<ColorId>),
    /// A string value.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
}

/// A sequence of items — every MCXQuery value.
pub type Sequence = Vec<Item>;

/// Evaluation errors, including the paper's dynamic error for
/// duplicate nodes in a constructed colored tree.
#[derive(Debug)]
pub enum EvalError {
    /// Storage-layer failure.
    Storage(mct_storage::StorageError),
    /// Unknown variable reference.
    UnknownVar(String),
    /// Unknown color literal.
    UnknownColor(String),
    /// A step had no color and no default color exists.
    NoColor,
    /// The §4.2 dynamic error: a node would occur twice in one colored
    /// tree of a constructed result.
    DuplicateNode(McNodeId, String),
    /// Anything else (type errors, unsupported forms).
    Dynamic(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Storage(e) => write!(f, "storage error: {e}"),
            EvalError::UnknownVar(v) => write!(f, "unknown variable ${v}"),
            EvalError::UnknownColor(c) => write!(f, "unknown color {{{c}}}"),
            EvalError::NoColor => write!(f, "location step without a color specification"),
            EvalError::DuplicateNode(n, color) => write!(
                f,
                "dynamic error: node {n:?} occurs more than once in colored tree {{{color}}}"
            ),
            EvalError::Dynamic(m) => write!(f, "dynamic error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<mct_storage::StorageError> for EvalError {
    fn from(e: mct_storage::StorageError) -> Self {
        EvalError::Storage(e)
    }
}

/// Result alias.
pub type EvalResult<T> = Result<T, EvalError>;

/// Evaluation context: the stored database, variable bindings, the
/// context item, and the pending construction edges.
pub struct EvalContext<'a, D: DiskManager = MemDisk> {
    /// The database queried and (for constructors/updates) mutated.
    pub stored: &'a mut StoredDb<D>,
    /// Default color for steps without a `{color}` (plain XQuery over
    /// a single-colored database).
    pub default_color: Option<ColorId>,
    vars: HashMap<String, Sequence>,
    context_item: Option<Item>,
    /// Children attached by element constructors, not yet materialized
    /// in any colored tree (until `createColor`).
    pending: HashMap<McNodeId, Vec<McNodeId>>,
}

impl<'a, D: DiskManager> EvalContext<'a, D> {
    /// Fresh context over a stored database.
    pub fn new(stored: &'a mut StoredDb<D>) -> Self {
        EvalContext {
            stored,
            default_color: None,
            vars: HashMap::new(),
            context_item: None,
            pending: HashMap::new(),
        }
    }

    /// Set the default color by name (for single-color XQuery).
    pub fn with_default_color(mut self, name: &str) -> EvalResult<Self> {
        let c = self
            .stored
            .db
            .color(name)
            .ok_or_else(|| EvalError::UnknownColor(name.to_string()))?;
        self.default_color = Some(c);
        Ok(self)
    }

    /// Bind a variable.
    pub fn bind(&mut self, name: &str, value: Sequence) {
        self.vars.insert(name.to_string(), value);
    }

    /// Read a variable binding.
    pub fn var(&self, name: &str) -> Option<&Sequence> {
        self.vars.get(name)
    }

    /// Set a variable, returning the previous binding.
    pub fn set_var(&mut self, name: &str, value: Sequence) -> Option<Sequence> {
        self.vars.insert(name.to_string(), value)
    }

    /// Restore a previous binding from [`Self::set_var`].
    pub fn restore_var(&mut self, name: &str, old: Option<Sequence>) {
        match old {
            Some(v) => {
                self.vars.insert(name.to_string(), v);
            }
            None => {
                self.vars.remove(name);
            }
        }
    }

    /// Take (and clear) the pending construction edges — used by
    /// update execution to capture a constructed fragment's structure.
    pub fn take_pending(&mut self) -> HashMap<McNodeId, Vec<McNodeId>> {
        std::mem::take(&mut self.pending)
    }

    fn resolve_color(&self, spec: &Option<String>) -> EvalResult<ColorId> {
        match spec {
            Some(name) => self
                .stored
                .db
                .color(name)
                .ok_or_else(|| EvalError::UnknownColor(name.clone())),
            None => self.default_color.ok_or(EvalError::NoColor),
        }
    }
}

/// Evaluate a parsed expression.
pub fn eval<D: DiskManager>(ctx: &mut EvalContext<'_, D>, e: &Expr) -> EvalResult<Sequence> {
    match e {
        Expr::Lit(Literal::Str(s)) => Ok(vec![Item::Str(s.clone())]),
        Expr::Lit(Literal::Num(n)) => Ok(vec![Item::Num(*n)]),
        Expr::Path(p) => eval_path(ctx, p),
        Expr::Cmp(l, op, r) => {
            let lv = eval(ctx, l)?;
            let rv = eval(ctx, r)?;
            Ok(vec![Item::Bool(general_compare(ctx, &lv, *op, &rv))])
        }
        Expr::And(l, r) => {
            let lv = eval(ctx, l)?;
            if !effective_boolean(&lv) {
                return Ok(vec![Item::Bool(false)]);
            }
            let rv = eval(ctx, r)?;
            Ok(vec![Item::Bool(effective_boolean(&rv))])
        }
        Expr::Or(l, r) => {
            let lv = eval(ctx, l)?;
            if effective_boolean(&lv) {
                return Ok(vec![Item::Bool(true)]);
            }
            let rv = eval(ctx, r)?;
            Ok(vec![Item::Bool(effective_boolean(&rv))])
        }
        Expr::Call(name, args) => eval_call(ctx, name, args),
        Expr::Flwor(f) => eval_flwor(ctx, f),
        Expr::Ctor(c) => {
            let n = eval_ctor(ctx, c)?;
            Ok(vec![Item::Node(n, None)])
        }
        Expr::Sequence(items) => {
            let mut out = Vec::new();
            for i in items {
                out.extend(eval(ctx, i)?);
            }
            Ok(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

fn eval_path<D: DiskManager>(ctx: &mut EvalContext<'_, D>, p: &PathExpr) -> EvalResult<Sequence> {
    let mut current: Sequence = match &p.start {
        PathStart::Document(_) => vec![Item::Node(McNodeId::DOCUMENT, None)],
        PathStart::Var(v) => ctx
            .vars
            .get(v)
            .cloned()
            .ok_or_else(|| EvalError::UnknownVar(v.clone()))?,
        PathStart::Context => ctx
            .context_item
            .clone()
            .map(|i| vec![i])
            .unwrap_or_default(),
    };
    for step in &p.steps {
        current = eval_step(ctx, &current, step)?;
    }
    Ok(current)
}

fn eval_step<D: DiskManager>(ctx: &mut EvalContext<'_, D>, input: &Sequence, step: &Step) -> EvalResult<Sequence> {
    // Attribute steps produce strings and need no tree.
    if step.axis == Axis::Attribute {
        let NodeTest::Name(aname) = &step.test else {
            return Err(EvalError::Dynamic("attribute step needs a name".into()));
        };
        let mut out = Vec::new();
        for item in input {
            if let Item::Node(n, _) = item {
                if let Some(v) = ctx.stored.db.attr(*n, aname) {
                    out.push(Item::Str(v.to_string()));
                }
            }
        }
        return Ok(out);
    }
    let c = ctx.resolve_color(&step.color)?;
    ctx.stored.db.ensure_annotated(c);
    let mut nodes: Vec<McNodeId> = Vec::new();
    for item in input {
        let Item::Node(n, _) = item else { continue };
        let n = *n;
        match step.axis {
            Axis::Child => nodes.extend(ctx.stored.db.children(n, c)),
            Axis::Descendant => nodes.extend(ctx.stored.db.descendants(n, c)),
            Axis::DescendantOrSelf => nodes.extend(ctx.stored.db.descendants_or_self(n, c)),
            Axis::Parent => nodes.extend(ctx.stored.db.parent(n, c)),
            Axis::Ancestor => nodes.extend(ctx.stored.db.ancestors(n, c)),
            Axis::AncestorOrSelf => {
                if ctx.stored.db.colors(n).contains(c) || n == McNodeId::DOCUMENT {
                    nodes.push(n);
                }
                nodes.extend(ctx.stored.db.ancestors(n, c));
            }
            Axis::SelfAxis => {
                if ctx.stored.db.colors(n).contains(c) || n == McNodeId::DOCUMENT {
                    nodes.push(n);
                }
            }
            // Handled by the early return above; a step that still
            // carries this axis here is a parser/planner defect, which
            // must surface as a dynamic error rather than a crash.
            Axis::Attribute => {
                return Err(EvalError::Dynamic(
                    "attribute axis reached tree navigation".into(),
                ))
            }
        }
    }
    // Node test.
    nodes.retain(|&n| match &step.test {
        NodeTest::AnyNode => true,
        NodeTest::AnyElement => ctx.stored.db.name_str(n).is_some(),
        NodeTest::Name(want) => ctx.stored.db.name_str(n) == Some(want.as_str()),
    });
    // Local order of the step color + dedup (path semantics).
    nodes.sort_by_key(|&n| ctx.stored.db.code(n, c).map(|cd| cd.start).unwrap_or(0));
    nodes.dedup();
    // Predicates. A predicate evaluating to a single number is a
    // POSITION test (XPath: `movie[2]` = the second movie), applied
    // against the sequence surviving the previous predicates.
    let mut survivors = nodes;
    for pred in &step.predicates {
        let mut next = Vec::with_capacity(survivors.len());
        for (pos, &n) in survivors.iter().enumerate() {
            let saved = ctx.context_item.replace(Item::Node(n, Some(c)));
            let v = eval(ctx, pred);
            ctx.context_item = saved;
            let v = v?;
            let keep = match v.as_slice() {
                [Item::Num(want)] => (pos + 1) as f64 == *want,
                _ => effective_boolean(&v),
            };
            if keep {
                next.push(n);
            }
        }
        survivors = next;
    }
    Ok(survivors
        .into_iter()
        .map(|n| Item::Node(n, Some(c)))
        .collect())
}

// ---------------------------------------------------------------------------
// Atomization & comparison
// ---------------------------------------------------------------------------

/// Atomize an item to a string (nodes use their string value in their
/// provenance color, falling back to direct content).
pub fn atomize<D: DiskManager>(ctx: &EvalContext<'_, D>, item: &Item) -> String {
    match item {
        Item::Str(s) => s.clone(),
        Item::Num(n) => format_num(*n),
        Item::Bool(b) => b.to_string(),
        Item::Node(n, c) => {
            let db = &ctx.stored.db;
            // In this data model an element's text is a single content
            // record (see mct-core's physical modeling note), so a node
            // with direct content atomizes to exactly that — its
            // children are separate elements, not text fragments.
            if let Some(content) = db.content(*n) {
                return content.to_string();
            }
            // Content-less elements atomize to their subtree text in
            // the provenance color (classic string-value), falling
            // back to any clean color.
            if let Some(c) = c {
                if !db.is_dirty(*c) {
                    if let Some(v) = db.string_value(*n, *c) {
                        return v;
                    }
                }
            }
            for c in db.colors(*n).iter() {
                if !db.is_dirty(c) {
                    if let Some(v) = db.string_value(*n, c) {
                        return v;
                    }
                }
            }
            String::new()
        }
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath general comparison: existential over both sequences.
pub fn general_compare<D: DiskManager>(ctx: &EvalContext<'_, D>, l: &Sequence, op: CmpOp, r: &Sequence) -> bool {
    for a in l {
        for b in r {
            // Two nodes compare by identity — the comparison the
            // paper's Q3 `{red}descendant::movie[. = $m]` relies on
            // (a multi-colored node is the *same* node in every tree).
            if let (Item::Node(na, _), Item::Node(nb, _)) = (a, b) {
                let hit = match op {
                    CmpOp::Eq => na == nb,
                    CmpOp::Ne => na != nb,
                    _ => false,
                };
                if hit {
                    return true;
                }
                continue;
            }
            let sa = atomize(ctx, a);
            let sb = atomize(ctx, b);
            let hit = match (sa.trim().parse::<f64>(), sb.trim().parse::<f64>()) {
                (Ok(na), Ok(nb)) => match op {
                    CmpOp::Eq => na == nb,
                    CmpOp::Ne => na != nb,
                    CmpOp::Lt => na < nb,
                    CmpOp::Le => na <= nb,
                    CmpOp::Gt => na > nb,
                    CmpOp::Ge => na >= nb,
                },
                _ => match op {
                    CmpOp::Eq => sa == sb,
                    CmpOp::Ne => sa != sb,
                    CmpOp::Lt => sa < sb,
                    CmpOp::Le => sa <= sb,
                    CmpOp::Gt => sa > sb,
                    CmpOp::Ge => sa >= sb,
                },
            };
            if hit {
                return true;
            }
        }
    }
    false
}

/// XPath effective boolean value.
pub fn effective_boolean(seq: &Sequence) -> bool {
    match seq.first() {
        None => false,
        Some(Item::Bool(b)) if seq.len() == 1 => *b,
        Some(Item::Num(n)) if seq.len() == 1 => *n != 0.0,
        Some(Item::Str(s)) if seq.len() == 1 => !s.is_empty(),
        Some(_) => true,
    }
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

fn eval_call<D: DiskManager>(ctx: &mut EvalContext<'_, D>, name: &str, args: &[Expr]) -> EvalResult<Sequence> {
    match name {
        "contains" => {
            expect_args(name, args, 2)?;
            let hay = eval(ctx, &args[0])?;
            let needle = eval(ctx, &args[1])?;
            let needle = needle.first().map(|i| atomize(ctx, i)).unwrap_or_default();
            let hit = hay.iter().any(|h| atomize(ctx, h).contains(&needle));
            Ok(vec![Item::Bool(hit)])
        }
        "count" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            Ok(vec![Item::Num(v.len() as f64)])
        }
        "empty" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            Ok(vec![Item::Bool(v.is_empty())])
        }
        "not" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            Ok(vec![Item::Bool(!effective_boolean(&v))])
        }
        "string" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            Ok(vec![Item::Str(
                v.first().map(|i| atomize(ctx, i)).unwrap_or_default(),
            )])
        }
        "number" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            let n = v
                .first()
                .map(|i| atomize(ctx, i))
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(f64::NAN);
            Ok(vec![Item::Num(n)])
        }
        "starts-with" => {
            expect_args(name, args, 2)?;
            let hay = eval(ctx, &args[0])?;
            let prefix = eval(ctx, &args[1])?;
            let prefix = prefix.first().map(|i| atomize(ctx, i)).unwrap_or_default();
            let hit = hay.iter().any(|h| atomize(ctx, h).starts_with(&prefix));
            Ok(vec![Item::Bool(hit)])
        }
        "string-length" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            let len = v
                .first()
                .map(|i| atomize(ctx, i).chars().count())
                .unwrap_or(0);
            Ok(vec![Item::Num(len as f64)])
        }
        "concat" => {
            let mut out = String::new();
            for a in args {
                let v = eval(ctx, a)?;
                for i in &v {
                    out.push_str(&atomize(ctx, i));
                }
            }
            Ok(vec![Item::Str(out)])
        }
        "sum" | "avg" | "min" | "max" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            let nums: Vec<f64> = v
                .iter()
                .filter_map(|i| atomize(ctx, i).trim().parse().ok())
                .collect();
            if nums.is_empty() {
                return Ok(if name == "sum" {
                    vec![Item::Num(0.0)]
                } else {
                    vec![] // empty sequence for avg/min/max of nothing
                });
            }
            let r = match name {
                "sum" => nums.iter().sum(),
                "avg" => nums.iter().sum::<f64>() / nums.len() as f64,
                "min" => nums.iter().copied().fold(f64::INFINITY, f64::min),
                _ => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            };
            Ok(vec![Item::Num(r)])
        }
        "distinct-values" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for i in &v {
                let s = atomize(ctx, i);
                if seen.insert(s.clone()) {
                    out.push(Item::Str(s));
                }
            }
            Ok(out)
        }
        "createCopy" => {
            expect_args(name, args, 1)?;
            let v = eval(ctx, &args[0])?;
            let mut out = Vec::new();
            for item in v {
                match item {
                    Item::Node(n, c) => {
                        let copy = deep_copy(ctx, n, c)?;
                        out.push(Item::Node(copy, None));
                    }
                    other => out.push(other),
                }
            }
            Ok(out)
        }
        "createColor" => {
            expect_args(name, args, 2)?;
            let color_name = color_literal(ctx, &args[0])?;
            let v = eval(ctx, &args[1])?;
            let c = ctx.stored.db.add_color(&color_name);
            for item in &v {
                if let Item::Node(n, _) = item {
                    materialize_color(ctx, *n, c, &color_name)?;
                }
            }
            Ok(v)
        }
        other => Err(EvalError::Dynamic(format!("unknown function {other}()"))),
    }
}

fn expect_args(name: &str, args: &[Expr], n: usize) -> EvalResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(EvalError::Dynamic(format!(
            "{name}() expects {n} argument(s), got {}",
            args.len()
        )))
    }
}

/// `createColor`'s first argument: a quoted string, or a bare name the
/// parser read as a relative one-step path (the paper writes
/// `createColor(black, ...)`).
fn color_literal<D: DiskManager>(ctx: &mut EvalContext<'_, D>, e: &Expr) -> EvalResult<String> {
    match e {
        Expr::Lit(Literal::Str(s)) => Ok(s.clone()),
        Expr::Path(p)
            if p.start == PathStart::Context
                && p.steps.len() == 1
                && p.steps[0].axis == Axis::Child
                && p.steps[0].predicates.is_empty() =>
        {
            if let NodeTest::Name(n) = &p.steps[0].test {
                Ok(n.clone())
            } else {
                Err(EvalError::Dynamic("bad color literal".into()))
            }
        }
        _ => {
            let v = eval(ctx, e)?;
            v.first()
                .map(|i| atomize(ctx, i))
                .ok_or_else(|| EvalError::Dynamic("empty color literal".into()))
        }
    }
}

/// Add `c` to node `n` and materialize its *pending* construction
/// edges in tree `c`, recursively. Existing nodes keep their identity
/// (and their structure in other colors). Raises the §4.2 dynamic
/// error if a node would be attached twice in `c`.
fn materialize_color<D: DiskManager>(
    ctx: &mut EvalContext<'_, D>,
    n: McNodeId,
    c: ColorId,
    color_name: &str,
) -> EvalResult<()> {
    if !ctx.stored.db.colors(n).contains(c) {
        ctx.stored.db.add_node_color(n, c);
    }
    let children = ctx.pending.get(&n).cloned().unwrap_or_default();
    for child in children {
        // Duplicate-occurrence dynamic error check.
        if ctx.stored.db.parent(child, c).is_some() {
            return Err(EvalError::DuplicateNode(child, color_name.to_string()));
        }
        materialize_color(ctx, child, c, color_name)?;
        ctx.stored.db.append_child(n, child, c);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

fn eval_ctor<D: DiskManager>(ctx: &mut EvalContext<'_, D>, ctor: &Constructor) -> EvalResult<McNodeId> {
    let el = ctx.stored.db.new_element_uncolored(&ctor.name);
    for (n, v) in &ctor.attrs {
        ctx.stored.db.set_attr(el, n, v);
    }
    let mut text = String::new();
    let mut children: Vec<McNodeId> = Vec::new();
    for item in &ctor.children {
        match item {
            ConstructorItem::Text(t) => text.push_str(t),
            ConstructorItem::Element(inner) => {
                children.push(eval_ctor(ctx, inner)?);
            }
            ConstructorItem::Enclosed(e) => {
                // Identity-preserving: node items become children with
                // their existing identity (§4.2); atomic items become
                // text content.
                let v = eval(ctx, e)?;
                for it in v {
                    match it {
                        Item::Node(n, _) => children.push(n),
                        other => {
                            let ctx_ref = &*ctx;
                            text.push_str(&atomize(ctx_ref, &other));
                        }
                    }
                }
            }
        }
    }
    if !text.is_empty() {
        ctx.stored.db.set_content(el, &text);
    }
    if !children.is_empty() {
        ctx.pending.insert(el, children);
    }
    Ok(el)
}

fn deep_copy<D: DiskManager>(
    ctx: &mut EvalContext<'_, D>,
    n: McNodeId,
    color: Option<ColorId>,
) -> EvalResult<McNodeId> {
    let name = ctx
        .stored
        .db
        .name_str(n)
        .ok_or_else(|| EvalError::Dynamic("createCopy of a non-element".into()))?
        .to_string();
    let copy = ctx.stored.db.new_element_uncolored(&name);
    let attrs: Vec<(String, String)> = ctx
        .stored
        .db
        .node(n)
        .attrs
        .iter()
        .map(|(s, v)| (ctx.stored.db.names.resolve(*s).to_string(), v.to_string()))
        .collect();
    for (an, av) in attrs {
        ctx.stored.db.set_attr(copy, &an, &av);
    }
    if let Some(content) = ctx.stored.db.content(n).map(str::to_string) {
        ctx.stored.db.set_content(copy, &content);
    }
    // Copy the subtree structure in the provenance color, if any.
    if let Some(c) = color {
        let children: Vec<McNodeId> = ctx.stored.db.children(n, c).collect();
        let mut copies = Vec::with_capacity(children.len());
        for child in children {
            copies.push(deep_copy(ctx, child, Some(c))?);
        }
        if !copies.is_empty() {
            ctx.pending.insert(copy, copies);
        }
    }
    Ok(copy)
}

// ---------------------------------------------------------------------------
// FLWOR
// ---------------------------------------------------------------------------

fn eval_flwor<D: DiskManager>(ctx: &mut EvalContext<'_, D>, f: &Flwor) -> EvalResult<Sequence> {
    let mut out: Vec<(Vec<String>, Sequence)> = Vec::new();
    bind_clauses(ctx, f, 0, &mut out)?;
    if !f.order_by.is_empty() {
        out.sort_by(|(ka, _), (kb, _)| {
            for (a, b) in ka.iter().zip(kb) {
                let ord = match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    // total_cmp: a total order even for NaN keys
                    // ("NaN" parses as f64), so order-by never sees
                    // an inconsistent comparator and sorts
                    // deterministically (NaN after +inf).
                    (Ok(na), Ok(nb)) => na.total_cmp(&nb),
                    _ => a.cmp(b),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    Ok(out.into_iter().flat_map(|(_, seq)| seq).collect())
}

fn bind_clauses<D: DiskManager>(
    ctx: &mut EvalContext<'_, D>,
    f: &Flwor,
    depth: usize,
    out: &mut Vec<(Vec<String>, Sequence)>,
) -> EvalResult<()> {
    if depth == f.clauses.len() {
        // where / order-by / return.
        if let Some(w) = &f.where_ {
            let v = eval(ctx, w)?;
            if !effective_boolean(&v) {
                return Ok(());
            }
        }
        let mut keys = Vec::with_capacity(f.order_by.len());
        for (k, asc) in &f.order_by {
            let v = eval(ctx, k)?;
            let mut key = v.first().map(|i| atomize(ctx, i)).unwrap_or_default();
            if !*asc {
                // Descending: invert by prefixing an ordering flip
                // marker is fragile; simplest is to negate numbers and
                // reverse-compare strings via a transformed key.
                key = invert_key(&key);
            }
            keys.push(key);
        }
        let r = eval(ctx, &f.ret)?;
        out.push((keys, r));
        return Ok(());
    }
    match &f.clauses[depth] {
        FlworClause::For(var, src) => {
            let items = eval(ctx, src)?;
            for item in items {
                let old = ctx.vars.insert(var.clone(), vec![item]);
                bind_clauses(ctx, f, depth + 1, out)?;
                restore(ctx, var, old);
            }
            Ok(())
        }
        FlworClause::Let(var, src) => {
            let v = eval(ctx, src)?;
            let old = ctx.vars.insert(var.clone(), v);
            bind_clauses(ctx, f, depth + 1, out)?;
            restore(ctx, var, old);
            Ok(())
        }
    }
}

fn restore<D: DiskManager>(ctx: &mut EvalContext<'_, D>, var: &str, old: Option<Sequence>) {
    match old {
        Some(v) => {
            ctx.vars.insert(var.to_string(), v);
        }
        None => {
            ctx.vars.remove(var);
        }
    }
}

fn invert_key(key: &str) -> String {
    if let Ok(n) = key.trim().parse::<f64>() {
        return format!("{:020.6}", 1e15 - n);
    }
    // Invert bytes for descending string order.
    key.bytes().map(|b| (255 - b) as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_update};
    use mct_core::{McNodeId, MctDatabase, StoredDb};

    /// The Figure 2 movie database (genre/award/actor hierarchies).
    fn movie_db() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let blue = db.add_color("blue");

        // Red: movie-genre hierarchy (Comedy with sub-genre Slapstick).
        let comedy = db.new_element("movie-genre", red);
        db.append_child(McNodeId::DOCUMENT, comedy, red);
        let cname = db.new_element("name", red);
        db.set_content(cname, "Comedy");
        db.append_child(comedy, cname, red);

        // Green: award hierarchy.
        let award = db.new_element("movie-award", green);
        db.append_child(McNodeId::DOCUMENT, award, green);
        let aname = db.new_element("name", green);
        db.set_content(aname, "Oscar-1950");
        db.append_child(award, aname, green);

        // Blue: actors.
        let actor = db.new_element("actor", blue);
        db.append_child(McNodeId::DOCUMENT, actor, blue);
        let actname = db.new_element("name", blue);
        db.set_content(actname, "Bette Davis");
        db.append_child(actor, actname, blue);

        // Movies: "All About Eve" (red+green, role by Bette), "Evil Fun"
        // (red only), "Other" (red+green).
        let m1 = db.new_element("movie", red);
        db.append_child(comedy, m1, red);
        db.add_node_color(m1, green);
        db.append_child(award, m1, green);
        let m1n = db.new_element("name", red);
        db.set_content(m1n, "All About Eve");
        db.append_child(m1, m1n, red);
        db.add_node_color(m1n, green);
        db.append_child(m1, m1n, green);
        let votes = db.new_element("votes", green);
        db.set_content(votes, "11");
        db.append_child(m1, votes, green);
        let role = db.new_element("movie-role", red);
        db.append_child(m1, role, red);
        db.add_node_color(role, blue);
        db.append_child(actor, role, blue);
        let rname = db.new_element("name", red);
        db.set_content(rname, "Margo");
        db.append_child(role, rname, red);

        let m2 = db.new_element("movie", red);
        db.append_child(comedy, m2, red);
        let m2n = db.new_element("name", red);
        db.set_content(m2n, "Evil Fun");
        db.append_child(m2, m2n, red);

        let m3 = db.new_element("movie", red);
        db.append_child(comedy, m3, red);
        db.add_node_color(m3, green);
        db.append_child(award, m3, green);
        let m3n = db.new_element("name", red);
        db.set_content(m3n, "Other Story");
        db.append_child(m3, m3n, red);
        db.add_node_color(m3n, green);
        db.append_child(m3, m3n, green);
        let votes3 = db.new_element("votes", green);
        db.set_content(votes3, "7");
        db.append_child(m3, votes3, green);

        StoredDb::build(db, 8 * 1024 * 1024).unwrap()
    }

    fn run(s: &mut StoredDb, q: &str) -> Sequence {
        let e = parse_query(q).unwrap();
        let mut ctx = EvalContext::new(s);
        eval(&mut ctx, &e).unwrap()
    }

    fn strings(s: &mut StoredDb, q: &str) -> Vec<String> {
        let e = parse_query(q).unwrap();
        let mut ctx = EvalContext::new(s);
        let v = eval(&mut ctx, &e).unwrap();
        let ctx2 = EvalContext::new(s);
        v.iter().map(|i| atomize(&ctx2, i)).collect()
    }

    #[test]
    fn q1_comedy_movies_named_eve() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
                    {red}descendant::movie[contains({red}child::name, "Eve")]
               return $m/{red}child::name"#,
        );
        assert_eq!(out, vec!["All About Eve"]);
    }

    #[test]
    fn q2_adds_green_membership_condition() {
        let mut s = movie_db();
        // Paper Q2: comedy + Oscar-nominated + name contains Eve.
        let out = strings(
            &mut s,
            r#"for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
                    {red}descendant::movie[contains({red}child::name, "Eve")],
                $m2 in document("mdb.xml")/{green}descendant::movie-award
                    [contains({green}child::name, "Oscar")]/{green}descendant::movie
               where $m = $m2
               return $m/{red}child::name"#,
        );
        // `$m = $m2` compares node identity: the movie is the SAME
        // node in the red and green trees.
        assert_eq!(out, vec!["All About Eve"]);
    }

    #[test]
    fn q4_multicolor_single_path() {
        let mut s = movie_db();
        // Movies with votes > 10 → their roles (red) → actors (blue).
        let out = strings(
            &mut s,
            r#"for $a in document("mdb.xml")/{green}descendant::movie-award
                    [contains({green}child::name, "Oscar")]/{green}descendant::movie
                    [{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor
               return $a/{blue}child::name"#,
        );
        assert_eq!(out, vec!["Bette Davis"]);
    }

    #[test]
    fn parent_axis_with_color() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"document("m")/{blue}descendant::movie-role/{red}parent::movie/{red}child::name"#,
        );
        assert_eq!(out, vec!["All About Eve"]);
    }

    #[test]
    fn color_incompatibility_empties_step() {
        let mut s = movie_db();
        let out = run(
            &mut s,
            r#"document("m")/{blue}descendant::movie-genre"#,
        );
        assert!(out.is_empty(), "genre nodes are not blue");
    }

    #[test]
    fn votes_comparison_numeric() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"for $m in document("m")/{green}descendant::movie[{green}child::votes > 10]
               return $m/{green}child::name"#,
        );
        assert_eq!(out, vec!["All About Eve"]);
    }

    #[test]
    fn constructor_retains_identity() {
        let mut s = movie_db();
        let e = parse_query(
            r#"for $m in document("m")/{green}descendant::movie
               return createColor("black", <m-name> { $m/{green}child::name } </m-name>)"#,
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut s);
        let out = eval(&mut ctx, &e).unwrap();
        assert_eq!(out.len(), 2);
        let black = s.db.color("black").unwrap();
        for item in &out {
            let Item::Node(n, _) = item else {
                unreachable!("query returns nodes")
            };
            assert_eq!(s.db.name_str(*n), Some("m-name"));
            // Its black child is the ORIGINAL name node (identity kept).
            let kids: Vec<_> = s.db.children(*n, black).collect();
            assert_eq!(kids.len(), 1);
            let red = s.db.color("red").unwrap();
            assert!(
                s.db.colors(kids[0]).contains(red),
                "child is the original (red) node, not a copy"
            );
        }
    }

    #[test]
    fn create_copy_breaks_identity() {
        let mut s = movie_db();
        let e = parse_query(
            r#"for $m in document("m")/{green}descendant::movie
               return createColor("black", <m-name> { createCopy($m/{green}child::name) } </m-name>)"#,
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut s);
        let out = eval(&mut ctx, &e).unwrap();
        let black = s.db.color("black").unwrap();
        let red = s.db.color("red").unwrap();
        for item in &out {
            let Item::Node(n, _) = item else {
                unreachable!("query returns nodes")
            };
            let kids: Vec<_> = s.db.children(*n, black).collect();
            assert_eq!(kids.len(), 1);
            assert!(
                !s.db.colors(kids[0]).contains(red),
                "copy must be a fresh node"
            );
        }
    }

    #[test]
    fn duplicate_node_raises_dynamic_error() {
        let mut s = movie_db();
        // The paper's dupl-problem constructor.
        let e = parse_query(
            r#"for $m in document("m")/{green}descendant::movie[{green}child::votes > 10]
               return createColor("black", <dupl-problem>
                   <m1> { $m/{green}child::name } </m1>
                   <m2> { $m/{green}child::name } </m2>
               </dupl-problem>)"#,
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut s);
        let err = eval(&mut ctx, &e).unwrap_err();
        assert!(matches!(err, EvalError::DuplicateNode(..)), "{err}");
    }

    #[test]
    fn q5_restructuring_group_by_votes() {
        let mut s = movie_db();
        // Figure 3 Q5 (votes ascending; result per Figure 7).
        let e = parse_query(
            r#"createColor("black", <byvotes> {
                 for $v in distinct-values(document("m")/{green}descendant::votes)
                 order by $v
                 return
                   <award-byvotes> {
                     for $m in document("m")/{green}descendant::movie[{green}child::votes = $v]
                     return $m
                   } <votes> { $v } </votes>
                   </award-byvotes>
               } </byvotes>)"#,
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut s);
        let out = eval(&mut ctx, &e).unwrap();
        assert_eq!(out.len(), 1);
        let Item::Node(byvotes, _) = out[0] else {
            unreachable!("constructor returns a node")
        };
        let black = s.db.color("black").unwrap();
        let groups: Vec<_> = s.db.children(byvotes, black).collect();
        assert_eq!(groups.len(), 2, "votes 7 and 11");
        // Each group: movie (reused identity!) + new votes node.
        let g0: Vec<_> = s.db.children(groups[0], black).collect();
        assert_eq!(g0.len(), 2);
        let green = s.db.color("green").unwrap();
        assert!(s.db.colors(g0[0]).contains(green), "movie identity reused");
        // Movies now have three colors (red, green, black) per §4.3.
        assert_eq!(s.db.colors(g0[0]).len(), 3);
        let votes_el = g0[1];
        assert_eq!(s.db.name_str(votes_el), Some("votes"));
        assert_eq!(s.db.content(votes_el), Some("7"), "ascending order");
    }

    #[test]
    fn order_by_descending() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"for $v in distinct-values(document("m")/{green}descendant::votes)
               order by $v descending
               return $v"#,
        );
        assert_eq!(out, vec!["11", "7"]);
    }

    #[test]
    fn let_and_count() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"let $m := document("m")/{red}descendant::movie
               return count($m)"#,
        );
        assert_eq!(out, vec!["3"]);
    }

    #[test]
    fn attribute_step() {
        let mut s = movie_db();
        // Add an attribute then query it.
        let red = s.db.color("red").unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        s.db.set_attr(movies[0].node, "rating", "PG");
        let out = strings(
            &mut s,
            r#"document("m")/{red}descendant::movie/@rating"#,
        );
        assert_eq!(out, vec!["PG"]);
    }

    #[test]
    fn unknown_color_is_an_error() {
        let mut s = movie_db();
        let e = parse_query(r#"document("m")/{chartreuse}descendant::movie"#).unwrap();
        let mut ctx = EvalContext::new(&mut s);
        assert!(matches!(
            eval(&mut ctx, &e),
            Err(EvalError::UnknownColor(_))
        ));
    }

    #[test]
    fn default_color_inherited_when_unspecified() {
        let mut s = movie_db();
        let e = parse_query(r#"document("m")/descendant::movie"#).unwrap();
        let mut ctx = EvalContext::new(&mut s).with_default_color("red").unwrap();
        let out = eval(&mut ctx, &e).unwrap();
        assert_eq!(out.len(), 3);
        // Without a default color, the same query errors.
        let mut ctx2 = EvalContext::new(&mut s);
        assert!(matches!(eval(&mut ctx2, &e), Err(EvalError::NoColor)));
    }

    #[test]
    fn positional_predicates() {
        let mut s = movie_db();
        // The second red movie.
        let out = strings(
            &mut s,
            r#"document("m")/{red}descendant::movie[2]/{red}child::name"#,
        );
        assert_eq!(out, vec!["Evil Fun"]);
        // Position after a filtering predicate.
        let out = strings(
            &mut s,
            r#"document("m")/{green}descendant::movie[{green}child::votes > 0][1]/{green}child::name"#,
        );
        assert_eq!(out, vec!["All About Eve"]);
    }

    #[test]
    fn ancestor_or_self_axis() {
        let mut s = movie_db();
        let out = run(
            &mut s,
            r#"document("m")/{red}descendant::movie-role/{red}ancestor-or-self::movie-role"#,
        );
        assert_eq!(out.len(), 1);
        let out2 = run(
            &mut s,
            r#"document("m")/{red}descendant::movie-role/{red}ancestor-or-self::node()"#,
        );
        // role + movie + genre + document.
        assert_eq!(out2.len(), 4);
    }

    #[test]
    fn aggregate_functions() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"sum(document("m")/{green}descendant::votes)"#,
        );
        assert_eq!(out, vec!["18"]); // 11 + 7
        let out = strings(
            &mut s,
            r#"max(document("m")/{green}descendant::votes)"#,
        );
        assert_eq!(out, vec!["11"]);
        let out = strings(
            &mut s,
            r#"avg(document("m")/{green}descendant::votes)"#,
        );
        assert_eq!(out, vec!["9"]);
        let out = strings(&mut s, r#"min(document("m")/{green}descendant::votes)"#);
        assert_eq!(out, vec!["7"]);
    }

    #[test]
    fn string_functions() {
        let mut s = movie_db();
        let out = strings(
            &mut s,
            r#"for $m in document("m")/{red}descendant::movie[starts-with({red}child::name, "All")]
               return string-length($m/{red}child::name)"#,
        );
        assert_eq!(out, vec!["13"]); // "All About Eve"
        let out = strings(&mut s, r#"concat("a", "b", 3)"#);
        assert_eq!(out, vec!["ab3"]);
    }

    #[test]
    fn update_replace_value() {
        let mut s = movie_db();
        let u = parse_update(
            r#"for $m in document("m")/{green}descendant::movie
               where $m/{green}child::votes = 7
               update $m {
                   replace value of $m/{green}child::votes with "8"
               }"#,
        )
        .unwrap();
        let n = crate::update::execute_update(&mut s, &u).unwrap();
        assert_eq!(n, 1);
        let out = strings(
            &mut s,
            r#"document("m")/{green}descendant::movie/{green}child::votes"#,
        );
        assert!(out.contains(&"8".to_string()));
        assert!(!out.contains(&"7".to_string()));
    }
}
