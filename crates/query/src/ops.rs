//! The physical operator algebra.
//!
//! Bulk (operator-at-a-time) operators over posting lists, in the
//! style of Timber's algebra that the paper's implementation used:
//!
//! * [`index_scan`] — tag-index posting list for one color.
//! * [`structural_join`] — the **stack-tree** binary structural join of
//!   Al-Khalifa et al. \[2\]: merges two lists sorted by start using a
//!   stack of open ancestors; `O(|A| + |D| + |out|)`.
//! * [`holistic_path_join`] — the **PathStack** holistic chain join of
//!   Bruno et al. \[8\]: linked stacks, one per query node, no
//!   intermediate results for the chain. (Branching twigs decompose
//!   into chains joined on the branch element, as Timber did.)
//! * [`value_join_eq`] — hash join on content/attribute values (the
//!   shallow schema's ID/IDREF joins).
//! * [`nl_join_cmp`] — block nested-loop join for inequality
//!   predicates; quadratic, exactly the behaviour the paper observed.
//! * [`cross_tree_op`] — the color-transition operator (§6.2) over
//!   tuple streams, built on [`mct_core::cross_tree_join`]'s probe.
//! * selections ([`select_contains`], [`select_content_eq`],
//!   [`select_number_cmp`], [`select_attr_eq`]), [`dup_elim`],
//!   [`project`], [`sort_by_col`].
//!
//! Tuples are just `Vec<StructRef>` with positional columns; joins
//! concatenate the outer and inner tuples.

use mct_core::{ColorId, StoredDb, StructRef};
use mct_storage::DiskManager;
use std::collections::HashMap;

/// Deliberate-fault hooks for the differential-testing harness
/// (`mct-sim` / `mctfuzz`). Arming a hook makes an operator compute a
/// *wrong* answer on purpose, so the harness can prove it detects and
/// minimizes real divergence. Every hook defaults to off and costs one
/// relaxed atomic load on the paths it guards.
#[doc(hidden)]
pub mod testing_faults {
    use std::sync::atomic::{AtomicBool, Ordering};

    static CHAIN_OFF_BY_ONE: AtomicBool = AtomicBool::new(false);

    /// Arm/disarm the off-by-one in [`super::holistic_path_join`]'s
    /// stack expansion (it skips the bottom entry of each parent
    /// stack, dropping root-to-leaf matches).
    pub fn set_chain_off_by_one(on: bool) {
        CHAIN_OFF_BY_ONE.store(on, Ordering::SeqCst);
    }

    pub(super) fn chain_off_by_one() -> bool {
        CHAIN_OFF_BY_ONE.load(Ordering::Relaxed)
    }
}

/// A tuple of structural references (positional columns).
pub type Tuple = Vec<StructRef>;

/// Structural relationship tested by a join.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// Parent-child (level difference exactly 1).
    Child,
    /// Ancestor-descendant (strict containment).
    Descendant,
}

/// How to extract a join key from a node.
#[derive(Clone, Debug)]
pub enum KeySpec {
    /// The element's content string.
    Content,
    /// The value of a named attribute.
    Attr(String),
    /// Whitespace-separated tokens of a named attribute (IDREFS).
    AttrTokens(String),
}

/// Comparison for numeric joins/selections.
///
/// Semantics over element content: content that does not parse as a
/// number makes the predicate **false** (the tuple is dropped, never a
/// panic), and any comparison involving NaN is **false — including
/// `!=`**. Note `"NaN"` and `"inf"` do parse as `f64`, so the NaN rule
/// matters even for plain text content; infinities compare normally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NumCmp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
}

impl NumCmp {
    /// Apply the comparison. NaN operands never match (even `Ne`).
    pub fn test(self, a: f64, b: f64) -> bool {
        if a.is_nan() || b.is_nan() {
            return false;
        }
        match self {
            NumCmp::Eq => a == b,
            NumCmp::Lt => a < b,
            NumCmp::Le => a <= b,
            NumCmp::Gt => a > b,
            NumCmp::Ge => a >= b,
            NumCmp::Ne => a != b,
        }
    }
}

/// Scan a tag's posting list in color `c`, producing 1-column tuples
/// in local document order.
pub fn index_scan<D: DiskManager>(
    s: &StoredDb<D>,
    c: ColorId,
    tag: &str,
) -> mct_storage::Result<Vec<Tuple>> {
    Ok(s.postings_named(c, tag)?.into_iter().map(|r| vec![r]).collect())
}

/// Stack-tree structural join. Inputs must be sorted by `code.start`
/// of the join columns (posting lists already are). Produces
/// `outer ++ inner` tuples sorted by the inner (descendant) column.
pub fn structural_join(
    outer: &[Tuple],
    ocol: usize,
    inner: &[Tuple],
    icol: usize,
    rel: Rel,
) -> Vec<Tuple> {
    debug_assert!(is_sorted_by(outer, ocol));
    debug_assert!(is_sorted_by(inner, icol));
    let mut out = Vec::new();
    // Stack holds indexes into `outer` of currently open ancestors.
    let mut stack: Vec<usize> = Vec::new();
    let mut oi = 0usize;
    for it in inner {
        let d = it[icol].code;
        // Open every ancestor candidate starting before d.
        while oi < outer.len() && outer[oi][ocol].code.start < d.start {
            let a = outer[oi][ocol].code;
            // Close stack entries that end before this ancestor starts.
            while let Some(&top) = stack.last() {
                if outer[top][ocol].code.end < a.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(oi);
            oi += 1;
        }
        // Close entries that end before d starts.
        while let Some(&top) = stack.last() {
            if outer[top][ocol].code.end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Every remaining open entry containing d matches (they are
        // nested, so all of them contain d if they are still open and
        // d.end fits).
        for &ai in &stack {
            let a = outer[ai][ocol].code;
            if !a.is_ancestor_of(&d) {
                continue;
            }
            if rel == Rel::Child && a.level + 1 != d.level {
                continue;
            }
            let mut t = outer[ai].clone();
            t.extend_from_slice(it);
            out.push(t);
        }
    }
    out
}

/// Naive nested-loop structural join — the test oracle.
pub fn naive_structural_join(
    outer: &[Tuple],
    ocol: usize,
    inner: &[Tuple],
    icol: usize,
    rel: Rel,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for it in inner {
        for ot in outer {
            let a = ot[ocol].code;
            let d = it[icol].code;
            let hit = match rel {
                Rel::Child => a.is_parent_of(&d),
                Rel::Descendant => a.is_ancestor_of(&d),
            };
            if hit {
                let mut t = ot.clone();
                t.extend_from_slice(it);
                out.push(t);
            }
        }
    }
    out
}

/// PathStack holistic join over a chain `q0 rel0 q1 rel1 ... qk`.
/// `lists[i]` is the (start-sorted) posting list for chain node `i`;
/// `rels[i]` relates `q_i` (ancestor side) to `q_{i+1}`. Produces one
/// tuple per root-to-leaf match, columns in chain order.
pub fn holistic_path_join(lists: &[Vec<StructRef>], rels: &[Rel]) -> Vec<Tuple> {
    assert_eq!(lists.len(), rels.len() + 1, "k+1 lists need k relations");
    let k = lists.len();
    if k == 1 {
        return lists[0].iter().map(|&r| vec![r]).collect();
    }
    // Per-node stacks of (ref, parent_stack_top_index_at_push).
    let mut stacks: Vec<Vec<(StructRef, usize)>> = vec![Vec::new(); k];
    let mut cursors = vec![0usize; k];
    let mut out = Vec::new();
    loop {
        // qmin: the list whose next element has the smallest start.
        let mut qmin = usize::MAX;
        let mut min_start = u32::MAX;
        for (i, list) in lists.iter().enumerate() {
            if cursors[i] < list.len() && list[cursors[i]].code.start < min_start {
                min_start = list[cursors[i]].code.start;
                qmin = i;
            }
        }
        if qmin == usize::MAX {
            break;
        }
        let next = lists[qmin][cursors[qmin]];
        cursors[qmin] += 1;
        // Clean every stack: pop entries whose interval ended.
        for st in stacks.iter_mut() {
            while let Some(&(top, _)) = st.last() {
                if top.code.end < next.code.start {
                    st.pop();
                } else {
                    break;
                }
            }
        }
        // Push only when the parent stack is non-empty (or root).
        if qmin == 0 || !stacks[qmin - 1].is_empty() {
            let parent_top = if qmin == 0 {
                0
            } else {
                stacks[qmin - 1].len() - 1
            };
            stacks[qmin].push((next, parent_top));
            if qmin == k - 1 {
                // Leaf push: emit all root-to-leaf combinations ending
                // at this leaf.
                expand(&stacks, rels, k - 1, stacks[k - 1].len() - 1, &mut out);
            }
        }
    }
    // Output in leaf (document) order already; each tuple is
    // [q0, q1, ..., qk].
    out
}

/// Emit every root-to-leaf tuple whose level-`level` column is
/// `stacks[level][idx]` (called exactly when a leaf is pushed).
fn expand(
    stacks: &[Vec<(StructRef, usize)>],
    rels: &[Rel],
    level: usize,
    idx: usize,
    out: &mut Vec<Tuple>,
) {
    for mut t in paths_to(stacks, rels, level, idx) {
        t.reverse(); // built leaf→root; emit root→leaf
        out.push(t);
    }
}

/// All partial tuples `[entry, parent, ..., root]` (leaf first) ending
/// at `stacks[level][idx]`, honouring the per-edge relations and the
/// parent-stack bound captured at push time.
fn paths_to(
    stacks: &[Vec<(StructRef, usize)>],
    rels: &[Rel],
    level: usize,
    idx: usize,
) -> Vec<Vec<StructRef>> {
    let (r, parent_top) = stacks[level][idx];
    if level == 0 {
        return vec![vec![r]];
    }
    let mut result = Vec::new();
    let bound = parent_top.min(stacks[level - 1].len().saturating_sub(1));
    let lo = usize::from(testing_faults::chain_off_by_one());
    for i in lo..=bound {
        let (a, _) = stacks[level - 1][i];
        if !a.code.is_ancestor_of(&r.code) {
            continue;
        }
        if rels[level - 1] == Rel::Child && a.code.level + 1 != r.code.level {
            continue;
        }
        for mut p in paths_to(stacks, rels, level - 1, i) {
            p.insert(0, r);
            result.push(p);
        }
    }
    result
}

/// Hash equality join on extracted string keys. Builds on the right,
/// probes with the left; output order follows the left input.
pub fn value_join_eq<D: DiskManager>(
    s: &StoredDb<D>,
    left: &[Tuple],
    lcol: usize,
    lkey: &KeySpec,
    right: &[Tuple],
    rcol: usize,
    rkey: &KeySpec,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut table: HashMap<String, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, t) in right.iter().enumerate() {
        for key in extract_keys(s, t[rcol], rkey)? {
            table.entry(key).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for lt in left {
        for key in extract_keys(s, lt[lcol], lkey)? {
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut t = lt.clone();
                    t.extend_from_slice(&right[ri]);
                    out.push(t);
                }
            }
        }
    }
    Ok(out)
}

/// Nested-loop join on a numeric comparison — quadratic by design
/// (this is the inequality value join whose scaling the paper calls
/// out in §7.2).
pub fn nl_join_cmp<D: DiskManager>(
    s: &StoredDb<D>,
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
    cmp: NumCmp,
) -> mct_storage::Result<Vec<Tuple>> {
    // Pre-fetch the numeric values once per side (still O(n*m) pairs).
    let lvals = fetch_numbers(s, left, lcol)?;
    let rvals = fetch_numbers(s, right, rcol)?;
    let mut out = Vec::new();
    for (lt, lv) in left.iter().zip(&lvals) {
        let Some(lv) = lv else { continue };
        for (rt, rv) in right.iter().zip(&rvals) {
            let Some(rv) = rv else { continue };
            if cmp.test(*lv, *rv) {
                let mut t = lt.clone();
                t.extend_from_slice(rt);
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// The color-transition operator: replace column `col`'s structural
/// reference with its counterpart in color `to` (dropping tuples whose
/// node lacks the color), then re-sort by that column. Uses the
/// paper's link-probe join.
pub fn cross_tree_op<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    to: ColorId,
) -> mct_storage::Result<Vec<Tuple>> {
    // Same metric names as mct_core's bulk cross_tree_join — the
    // registry hands back the shared counters, so every color
    // transition lands in query.crosstree.* regardless of entry point.
    struct Counters {
        calls: mct_obs::Counter,
        input_rows: mct_obs::Counter,
        output_rows: mct_obs::Counter,
        transitions: mct_obs::Counter,
    }
    static COUNTERS: std::sync::OnceLock<Counters> = std::sync::OnceLock::new();
    let c = COUNTERS.get_or_init(|| Counters {
        calls: mct_obs::counter("query.crosstree.calls"),
        input_rows: mct_obs::counter("query.crosstree.input_rows"),
        output_rows: mct_obs::counter("query.crosstree.output_rows"),
        transitions: mct_obs::counter("query.crosstree.transitions"),
    });
    let _span = mct_obs::trace::span("crosstree.op");
    c.calls.inc();
    c.input_rows.add(input.len() as u64);
    let mut out = Vec::with_capacity(input.len());
    for mut t in input {
        if let Some(code) = s.link_probe(t[col].node, to)? {
            t[col] = StructRef {
                node: t[col].node,
                code,
            };
            out.push(t);
        }
    }
    out.sort_by_key(|t| t[col].code.start);
    c.output_rows.add(out.len() as u64);
    c.transitions.add(out.len() as u64);
    Ok(out)
}

/// Keep tuples whose `col` content contains `needle`.
pub fn select_contains<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    needle: &str,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in input {
        if let Some(content) = s.fetch_content(t[col].node)? {
            if content.contains(needle) {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// Keep tuples whose `col` content equals `value` exactly.
pub fn select_content_eq<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    value: &str,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in input {
        if s.fetch_content(t[col].node)?.as_deref() == Some(value) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Keep tuples whose `col` content compares `cmp` against `k`.
pub fn select_number_cmp<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    cmp: NumCmp,
    k: f64,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in input {
        if let Some(content) = s.fetch_content(t[col].node)? {
            if let Ok(v) = content.trim().parse::<f64>() {
                if cmp.test(v, k) {
                    out.push(t);
                }
            }
        }
    }
    Ok(out)
}

/// Keep tuples whose `col` attribute `name` equals `value`.
pub fn select_attr_eq<D: DiskManager>(
    s: &StoredDb<D>,
    input: Vec<Tuple>,
    col: usize,
    name: &str,
    value: &str,
) -> mct_storage::Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in input {
        let attrs = s.fetch_attrs(t[col].node)?;
        if attrs.iter().any(|(n, v)| n == name && v == value) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Remove duplicate tuples, comparing the node ids of `cols`.
/// Preserves first-occurrence order.
pub fn dup_elim(input: Vec<Tuple>, cols: &[usize]) -> Vec<Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(input.len());
    for t in input {
        let key: Vec<u32> = cols.iter().map(|&c| t[c].node.0).collect();
        if seen.insert(key) {
            out.push(t);
        }
    }
    out
}

/// Project tuples onto `cols` (in the given order).
pub fn project(input: Vec<Tuple>, cols: &[usize]) -> Vec<Tuple> {
    input
        .into_iter()
        .map(|t| cols.iter().map(|&c| t[c]).collect())
        .collect()
}

/// Sort tuples by the start code of `col`.
pub fn sort_by_col(mut input: Vec<Tuple>, col: usize) -> Vec<Tuple> {
    input.sort_by_key(|t| t[col].code.start);
    input
}

fn is_sorted_by(tuples: &[Tuple], col: usize) -> bool {
    tuples
        .windows(2)
        .all(|w| w[0][col].code.start <= w[1][col].code.start)
}

fn extract_keys<D: DiskManager>(
    s: &StoredDb<D>,
    r: StructRef,
    spec: &KeySpec,
) -> mct_storage::Result<Vec<String>> {
    Ok(match spec {
        KeySpec::Content => s.fetch_content(r.node)?.map(|c| vec![c]).unwrap_or_default(),
        KeySpec::Attr(name) => {
            let attrs = s.fetch_attrs(r.node)?;
            attrs
                .into_iter()
                .filter(|(n, _)| n == name)
                .map(|(_, v)| v)
                .collect()
        }
        KeySpec::AttrTokens(name) => {
            let attrs = s.fetch_attrs(r.node)?;
            attrs
                .into_iter()
                .filter(|(n, _)| n == name)
                .flat_map(|(_, v)| v.split_whitespace().map(str::to_string).collect::<Vec<_>>())
                .collect()
        }
    })
}

fn fetch_numbers<D: DiskManager>(
    s: &StoredDb<D>,
    tuples: &[Tuple],
    col: usize,
) -> mct_storage::Result<Vec<Option<f64>>> {
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        let v = s
            .fetch_content(t[col].node)?
            .and_then(|c| c.trim().parse::<f64>().ok());
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_core::{McNodeId, MctDatabase, StoredDb};

    /// genre > movie > (name, role*) in red; award > movie in green for
    /// even movies; actor > role in blue.
    fn stored() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let blue = db.add_color("blue");
        let genre = db.new_element("genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let award = db.new_element("award", green);
        db.set_content(award, "Oscar");
        db.append_child(McNodeId::DOCUMENT, award, green);
        let actor = db.new_element("actor", blue);
        db.set_content(actor, "Bette Davis");
        db.append_child(McNodeId::DOCUMENT, actor, blue);
        for i in 0..8 {
            let m = db.new_element("movie", red);
            db.set_attr(m, "id", &format!("m{i}"));
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            let votes = db.new_element("votes", red);
            db.set_content(votes, &format!("{}", i * 10));
            db.append_child(m, votes, red);
            if i % 2 == 0 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
            }
            if i % 4 == 0 {
                let role = db.new_element("role", red);
                db.set_attr(role, "movieIdRef", &format!("m{i}"));
                db.append_child(m, role, red);
                db.add_node_color(role, blue);
                db.append_child(actor, role, blue);
            }
        }
        StoredDb::build(db, 8 * 1024 * 1024).unwrap()
    }

    #[test]
    fn structural_join_matches_naive() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let genres = index_scan(&s, red, "genre").unwrap();
        let movies = index_scan(&s, red, "movie").unwrap();
        let names = index_scan(&s, red, "name").unwrap();
        for rel in [Rel::Child, Rel::Descendant] {
            let fast = structural_join(&genres, 0, &movies, 0, rel);
            let slow = naive_structural_join(&genres, 0, &movies, 0, rel);
            assert_eq!(fast.len(), slow.len(), "{rel:?}");
            assert_eq!(fast.len(), 8);
        }
        // genre//name is descendant but not child.
        let desc = structural_join(&genres, 0, &names, 0, Rel::Descendant);
        let child = structural_join(&genres, 0, &names, 0, Rel::Child);
        assert_eq!(desc.len(), 8);
        assert_eq!(child.len(), 0);
    }

    #[test]
    fn structural_join_tuple_concatenation() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let movies = index_scan(&s, red, "movie").unwrap();
        let names = index_scan(&s, red, "name").unwrap();
        let joined = structural_join(&movies, 0, &names, 0, Rel::Child);
        assert!(joined.iter().all(|t| t.len() == 2));
        for t in &joined {
            assert!(t[0].code.is_parent_of(&t[1].code));
        }
    }

    #[test]
    fn holistic_chain_equals_binary_composition() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let genres: Vec<_> = s.postings_named(red, "genre").unwrap();
        let movies: Vec<_> = s.postings_named(red, "movie").unwrap();
        let names: Vec<_> = s.postings_named(red, "name").unwrap();
        let holistic = holistic_path_join(
            &[genres.clone(), movies.clone(), names.clone()],
            &[Rel::Descendant, Rel::Child],
        );
        // Binary composition oracle.
        let g: Vec<Tuple> = genres.iter().map(|&r| vec![r]).collect();
        let m: Vec<Tuple> = movies.iter().map(|&r| vec![r]).collect();
        let n: Vec<Tuple> = names.iter().map(|&r| vec![r]).collect();
        let gm = structural_join(&g, 0, &m, 0, Rel::Descendant);
        let gm = sort_by_col(gm, 1);
        let gmn = structural_join(&gm, 1, &n, 0, Rel::Child);
        assert_eq!(holistic.len(), gmn.len());
        assert_eq!(holistic.len(), 8);
        let mut a: Vec<Vec<u32>> = holistic
            .iter()
            .map(|t| t.iter().map(|r| r.node.0).collect())
            .collect();
        let mut b: Vec<Vec<u32>> = gmn
            .iter()
            .map(|t| t.iter().map(|r| r.node.0).collect())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn holistic_single_list_passthrough() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let movies: Vec<_> = s.postings_named(red, "movie").unwrap();
        let out = holistic_path_join(std::slice::from_ref(&movies), &[]);
        assert_eq!(out.len(), movies.len());
    }

    #[test]
    fn value_join_on_attribute() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let movies = index_scan(&s, red, "movie").unwrap();
        let roles = index_scan(&s, red, "role").unwrap();
        let joined = value_join_eq(
            &s,
            &roles,
            0,
            &KeySpec::Attr("movieIdRef".into()),
            &movies,
            0,
            &KeySpec::Attr("id".into()),
        )
        .unwrap();
        assert_eq!(joined.len(), 2, "roles exist for movies 0 and 4");
        for t in &joined {
            let role_ref = s.fetch_attrs(t[0].node).unwrap();
            let movie_id = s.fetch_attrs(t[1].node).unwrap();
            assert_eq!(role_ref[0].1, movie_id[0].1);
        }
    }

    #[test]
    fn value_join_idrefs_tokens() {
        // Build a tiny db with an IDREFS attribute.
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let root = db.new_element("root", c);
        db.append_child(McNodeId::DOCUMENT, root, c);
        let a = db.new_element("a", c);
        db.set_attr(a, "refs", "x y z");
        db.append_child(root, a, c);
        for id in ["x", "y", "w"] {
            let b = db.new_element("b", c);
            db.set_attr(b, "id", id);
            db.append_child(root, b, c);
        }
        let s = StoredDb::build(db, 1024 * 1024).unwrap();
        let as_ = index_scan(&s, c, "a").unwrap();
        let bs = index_scan(&s, c, "b").unwrap();
        let joined = value_join_eq(
            &s,
            &as_,
            0,
            &KeySpec::AttrTokens("refs".into()),
            &bs,
            0,
            &KeySpec::Attr("id".into()),
        )
        .unwrap();
        assert_eq!(joined.len(), 2, "x and y match, z has no target, w unreferenced");
    }

    #[test]
    fn nested_loop_inequality_join() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let votes = index_scan(&s, red, "votes").unwrap();
        // votes > votes: strict pairs among 0,10,...,70 → 28 pairs.
        let joined = nl_join_cmp(&s, &votes, 0, &votes, 0, NumCmp::Gt).unwrap();
        assert_eq!(joined.len(), 28);
    }

    #[test]
    fn cross_tree_op_changes_codes_and_order() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let movies = index_scan(&s, red, "movie").unwrap();
        let crossed = cross_tree_op(&s, movies, 0, green).unwrap();
        assert_eq!(crossed.len(), 4, "even movies are green");
        for t in &crossed {
            assert_eq!(
                t[0].code.start,
                s.db.code(t[0].node, green).unwrap().start
            );
        }
        assert!(crossed.windows(2).all(|w| w[0][0].code.start <= w[1][0].code.start));
    }

    #[test]
    fn selections() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let names = index_scan(&s, red, "name").unwrap();
        let eq = select_content_eq(&s, names.clone(), 0, "Movie 3").unwrap();
        assert_eq!(eq.len(), 1);
        let has = select_contains(&s, names.clone(), 0, "Movie").unwrap();
        assert_eq!(has.len(), 8);
        let votes = index_scan(&s, red, "votes").unwrap();
        let big = select_number_cmp(&s, votes, 0, NumCmp::Gt, 45.0).unwrap();
        assert_eq!(big.len(), 3); // 50, 60, 70
        let movies = index_scan(&s, red, "movie").unwrap();
        let m3 = select_attr_eq(&s, movies, 0, "id", "m3").unwrap();
        assert_eq!(m3.len(), 1);
    }

    #[test]
    fn numcmp_nan_never_matches() {
        let all = [NumCmp::Eq, NumCmp::Lt, NumCmp::Le, NumCmp::Gt, NumCmp::Ge, NumCmp::Ne];
        for cmp in all {
            assert!(!cmp.test(f64::NAN, 1.0), "{cmp:?} NaN lhs");
            assert!(!cmp.test(1.0, f64::NAN), "{cmp:?} NaN rhs");
            assert!(!cmp.test(f64::NAN, f64::NAN), "{cmp:?} NaN both");
        }
        // Ne on NaN is false too — deliberately not IEEE `!=`.
        assert!(!NumCmp::Ne.test(f64::NAN, 1.0));
        // Infinities compare normally.
        assert!(NumCmp::Gt.test(f64::INFINITY, 1e308));
        assert!(NumCmp::Lt.test(f64::NEG_INFINITY, 0.0));
        assert!(NumCmp::Ne.test(1.0, 2.0));
    }

    #[test]
    fn select_number_cmp_odd_content() {
        // "NaN" and "inf" parse as f64; "n/a" does not. None may panic
        // and none but the real numbers/infinities may match.
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let root = db.new_element("root", c);
        db.append_child(McNodeId::DOCUMENT, root, c);
        for content in ["NaN", "inf", "-inf", "n/a", "5", ""] {
            let v = db.new_element("v", c);
            db.set_content(v, content);
            db.append_child(root, v, c);
        }
        let s = StoredDb::build(db, 1024 * 1024).unwrap();
        let vs = index_scan(&s, c, "v").unwrap();
        let fetch = |ts: &[Tuple]| -> Vec<String> {
            ts.iter()
                .map(|t| s.fetch_content(t[0].node).unwrap().unwrap_or_default())
                .collect()
        };
        let gt = select_number_cmp(&s, vs.clone(), 0, NumCmp::Gt, 1.0).unwrap();
        assert_eq!(fetch(&gt), ["inf", "5"], "NaN and unparsable never match");
        let ne = select_number_cmp(&s, vs.clone(), 0, NumCmp::Ne, 5.0).unwrap();
        assert_eq!(fetch(&ne), ["inf", "-inf"], "NaN != k is still false");
        let le = select_number_cmp(&s, vs, 0, NumCmp::Le, f64::NAN).unwrap();
        assert!(le.is_empty(), "NaN bound matches nothing");
    }

    #[test]
    fn dup_elim_and_project() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let movies = index_scan(&s, red, "movie").unwrap();
        let names = index_scan(&s, red, "name").unwrap();
        let joined = structural_join(&movies, 0, &names, 0, Rel::Child);
        let only_movies = project(joined.clone(), &[0]);
        assert!(only_movies.iter().all(|t| t.len() == 1));
        let doubled: Vec<Tuple> = joined.iter().chain(joined.iter()).cloned().collect();
        let unique = dup_elim(doubled, &[0, 1]);
        assert_eq!(unique.len(), joined.len());
    }
}
