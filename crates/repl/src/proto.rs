//! The replication wire protocol: length-prefixed, CRC-framed binary
//! messages over one TCP connection per replica.
//!
//! ## Frame layout
//!
//! ```text
//! magic  u32 LE   0x314C5052 ("RPL1")
//! type   u8       frame discriminator (below)
//! len    u32 LE   payload length in bytes
//! payload [len]
//! crc    u32 LE   CRC-32 over type ‖ len ‖ payload
//! ```
//!
//! All integers are little-endian, matching the WAL's own framing.
//! Strings carry a `u16` length prefix. A frame that fails the magic,
//! a bounds check, or the CRC is a protocol error — the connection is
//! torn down and the replica reconnects from its last applied LSN.
//!
//! ## Conversation
//!
//! ```text
//! replica → primary   HELLO   {version, last_applied_lsn, replica_id}
//! primary → replica   RESUME  {from_lsn, primary_http}          — or —
//!                     SNAP_BEGIN {lsn, num_pages, primary_http, catalog}
//!                     SNAP_PAGE × num_pages
//!                     SNAP_END
//! primary → replica   REC_IMAGE* REC_COMMIT  (repeating)
//!                     HEARTBEAT {committed_lsn, lag_bytes}
//! replica → primary   ACK {applied_lsn}      (after each applied commit)
//! ```
//!
//! The primary answers `RESUME` iff the replica's LSN still falls
//! inside the live log (`resume_floor ≤ lsn ≤ committed_lsn`);
//! otherwise checkpoint truncation has outrun the replica and a full
//! snapshot is re-sent. See DESIGN.md §16.

use mct_storage::crc32;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

/// Frame magic: `"RPL1"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RPL1");
/// Protocol version carried in `HELLO`; bumped on incompatible change.
pub const VERSION: u32 = 1;
/// Upper bound on one frame's payload — the WAL's own record cap plus
/// framing slack. Anything larger is a corrupt length field.
pub const MAX_FRAME: usize = 80 << 20;

const T_HELLO: u8 = 1;
const T_SNAP_BEGIN: u8 = 2;
const T_SNAP_PAGE: u8 = 3;
const T_SNAP_END: u8 = 4;
const T_RESUME: u8 = 5;
const T_REC_IMAGE: u8 = 6;
const T_REC_COMMIT: u8 = 7;
const T_HEARTBEAT: u8 = 8;
const T_ACK: u8 = 9;

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Replica's opening message: who it is and where its store stands.
    Hello {
        /// Protocol version ([`VERSION`]).
        version: u32,
        /// LSN of the last commit the replica has applied (0 = empty).
        last_applied_lsn: u64,
        /// Stable replica identity for the primary's status registry.
        replica_id: String,
    },
    /// Snapshot bootstrap begins: the store state as of `lsn`.
    SnapBegin {
        /// Committed LSN the snapshot captures; streaming resumes after it.
        lsn: u64,
        /// Data-file page count; exactly this many `SnapPage` frames follow.
        num_pages: u32,
        /// The primary's HTTP address, for the replica's `421` responses.
        primary_http: String,
        /// Serialized physical catalog (snapshot format).
        catalog: Vec<u8>,
    },
    /// One raw data-file page of the snapshot.
    SnapPage {
        /// Page number.
        page: u32,
        /// `PAGE_SIZE` bytes.
        image: Vec<u8>,
    },
    /// Snapshot complete; committed records stream from here on.
    SnapEnd,
    /// The replica's LSN is still in the live log: stream continues
    /// after `from_lsn`, no snapshot needed.
    Resume {
        /// Echo of the replica's last applied LSN.
        from_lsn: u64,
        /// The primary's HTTP address, for the replica's `421` responses.
        primary_http: String,
    },
    /// A committed page image (WAL `KIND_IMAGE`).
    RecImage {
        /// The record's LSN.
        lsn: u64,
        /// Page the image belongs to.
        page: u32,
        /// `PAGE_SIZE` bytes.
        image: Vec<u8>,
    },
    /// A commit (or checkpoint) record: apply the buffered images plus
    /// this catalog atomically.
    RecCommit {
        /// The commit record's LSN — the replica's new applied LSN.
        lsn: u64,
        /// True for `KIND_CHECKPOINT` records (idempotent re-commit).
        checkpoint: bool,
        /// Data-file page count at this commit (truncate beyond it).
        num_pages: u32,
        /// Serialized physical catalog.
        catalog: Vec<u8>,
    },
    /// Periodic primary→replica liveness + lag report.
    Heartbeat {
        /// The primary's current committed LSN.
        committed_lsn: u64,
        /// Committed WAL bytes not yet streamed to this replica.
        lag_bytes: u64,
    },
    /// Replica→primary: everything up to `applied_lsn` is applied.
    Ack {
        /// The replica's last applied commit LSN.
        applied_lsn: u64,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(io::Error::other("string field too long for frame"));
    }
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
    Ok(())
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Bounds-checked little-endian reader over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| io::Error::other("replication frame payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| io::Error::other("non-UTF-8 string in replication frame"))
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::other("trailing bytes in replication frame"))
        }
    }
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => T_HELLO,
            Frame::SnapBegin { .. } => T_SNAP_BEGIN,
            Frame::SnapPage { .. } => T_SNAP_PAGE,
            Frame::SnapEnd => T_SNAP_END,
            Frame::Resume { .. } => T_RESUME,
            Frame::RecImage { .. } => T_REC_IMAGE,
            Frame::RecCommit { .. } => T_REC_COMMIT,
            Frame::Heartbeat { .. } => T_HEARTBEAT,
            Frame::Ack { .. } => T_ACK,
        }
    }

    fn payload(&self) -> io::Result<Vec<u8>> {
        let mut p = Vec::new();
        match self {
            Frame::Hello {
                version,
                last_applied_lsn,
                replica_id,
            } => {
                put_u32(&mut p, *version);
                put_u64(&mut p, *last_applied_lsn);
                put_str(&mut p, replica_id)?;
            }
            Frame::SnapBegin {
                lsn,
                num_pages,
                primary_http,
                catalog,
            } => {
                put_u64(&mut p, *lsn);
                put_u32(&mut p, *num_pages);
                put_str(&mut p, primary_http)?;
                put_bytes(&mut p, catalog);
            }
            Frame::SnapPage { page, image } => {
                put_u32(&mut p, *page);
                put_bytes(&mut p, image);
            }
            Frame::SnapEnd => {}
            Frame::Resume {
                from_lsn,
                primary_http,
            } => {
                put_u64(&mut p, *from_lsn);
                put_str(&mut p, primary_http)?;
            }
            Frame::RecImage { lsn, page, image } => {
                put_u64(&mut p, *lsn);
                put_u32(&mut p, *page);
                put_bytes(&mut p, image);
            }
            Frame::RecCommit {
                lsn,
                checkpoint,
                num_pages,
                catalog,
            } => {
                put_u64(&mut p, *lsn);
                p.push(u8::from(*checkpoint));
                put_u32(&mut p, *num_pages);
                put_bytes(&mut p, catalog);
            }
            Frame::Heartbeat {
                committed_lsn,
                lag_bytes,
            } => {
                put_u64(&mut p, *committed_lsn);
                put_u64(&mut p, *lag_bytes);
            }
            Frame::Ack { applied_lsn } => {
                put_u64(&mut p, *applied_lsn);
            }
        }
        Ok(p)
    }

    fn decode(typ: u8, payload: &[u8]) -> io::Result<Frame> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let frame = match typ {
            T_HELLO => Frame::Hello {
                version: c.u32()?,
                last_applied_lsn: c.u64()?,
                replica_id: c.str()?,
            },
            T_SNAP_BEGIN => Frame::SnapBegin {
                lsn: c.u64()?,
                num_pages: c.u32()?,
                primary_http: c.str()?,
                catalog: c.bytes()?,
            },
            T_SNAP_PAGE => Frame::SnapPage {
                page: c.u32()?,
                image: c.bytes()?,
            },
            T_SNAP_END => Frame::SnapEnd,
            T_RESUME => Frame::Resume {
                from_lsn: c.u64()?,
                primary_http: c.str()?,
            },
            T_REC_IMAGE => Frame::RecImage {
                lsn: c.u64()?,
                page: c.u32()?,
                image: c.bytes()?,
            },
            T_REC_COMMIT => Frame::RecCommit {
                lsn: c.u64()?,
                checkpoint: c.u8()? != 0,
                num_pages: c.u32()?,
                catalog: c.bytes()?,
            },
            T_HEARTBEAT => Frame::Heartbeat {
                committed_lsn: c.u64()?,
                lag_bytes: c.u64()?,
            },
            T_ACK => Frame::Ack {
                applied_lsn: c.u64()?,
            },
            other => {
                return Err(io::Error::other(format!(
                    "unknown replication frame type {other}"
                )))
            }
        };
        c.done()?;
        Ok(frame)
    }
}

/// CRC input: the type byte and length field guard the framing itself,
/// not just the payload.
fn frame_crc(typ: u8, payload: &[u8]) -> u32 {
    let mut head = [0u8; 5];
    head[0] = typ;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    crc32(&[&head[..], payload].concat())
}

/// Serialize and send one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let typ = frame.type_byte();
    let payload = frame.payload()?;
    let mut out = Vec::with_capacity(13 + payload.len() + 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(typ);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&frame_crc(typ, &payload).to_le_bytes());
    w.write_all(&out)
}

fn read_exact_into(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf)
}

/// Read one frame from a blocking reader (test helper and the
/// bootstrap path, where idle-timeouts are not in play).
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut magic = [0u8; 4];
    read_exact_into(r, &mut magic)?;
    finish_frame(r, magic)
}

/// Read one frame, tolerating read-timeout wakeups while the
/// connection is idle (between frames). Returns `Ok(None)` when `stop`
/// was raised during an idle wait. A timeout that fires *mid-frame*
/// surfaces as an error — the peer went quiet with a frame half-sent,
/// and resynchronizing inside a byte stream is not possible; the
/// caller's reconnect path handles it.
pub fn read_frame_idle(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Frame>> {
    let mut magic = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut magic[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "replication peer closed the connection",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    finish_frame(stream, magic).map(Some)
}

/// Everything after the magic: header, payload, CRC check, decode.
fn finish_frame(r: &mut impl Read, magic: [u8; 4]) -> io::Result<Frame> {
    if u32::from_le_bytes(magic) != MAGIC {
        return Err(io::Error::other("bad replication frame magic"));
    }
    let mut head = [0u8; 5];
    read_exact_into(r, &mut head)?;
    let typ = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::other(format!(
            "replication frame length {len} exceeds cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_into(r, &mut payload)?;
    let mut crc = [0u8; 4];
    read_exact_into(r, &mut crc)?;
    if u32::from_le_bytes(crc) != frame_crc(typ, &payload) {
        return Err(io::Error::other("replication frame CRC mismatch"));
    }
    Frame::decode(typ, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), f);
        assert!(r.is_empty(), "bytes left over");
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: VERSION,
            last_applied_lsn: 42,
            replica_id: "replica-a".to_string(),
        });
        roundtrip(Frame::SnapBegin {
            lsn: 7,
            num_pages: 3,
            primary_http: "127.0.0.1:8080".to_string(),
            catalog: vec![1, 2, 3],
        });
        roundtrip(Frame::SnapPage {
            page: 2,
            image: vec![0xAB; 64],
        });
        roundtrip(Frame::SnapEnd);
        roundtrip(Frame::Resume {
            from_lsn: 9,
            primary_http: "h:1".to_string(),
        });
        roundtrip(Frame::RecImage {
            lsn: 10,
            page: 5,
            image: vec![0xCD; 32],
        });
        roundtrip(Frame::RecCommit {
            lsn: 11,
            checkpoint: true,
            num_pages: 6,
            catalog: vec![9; 17],
        });
        roundtrip(Frame::Heartbeat {
            committed_lsn: 11,
            lag_bytes: 0,
        });
        roundtrip(Frame::Ack { applied_lsn: 11 });
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Ack { applied_lsn: 1 }).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Hello {
                version: 1,
                last_applied_lsn: 0,
                replica_id: "x".to_string(),
            },
        )
        .unwrap();
        buf[10] ^= 0x55;
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::SnapEnd).unwrap();
        buf[0] = b'X';
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(T_SNAP_END);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn trailing_garbage_inside_payload_is_rejected() {
        // A SnapEnd with a non-empty payload: decode must notice.
        let payload = [0u8; 3];
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(T_SNAP_END);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&frame_crc(T_SNAP_END, &payload).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
