//! # mct-repl — WAL-shipping replication for `mctd`
//!
//! Horizontal read scaling for the paper's read-dominated workload
//! (§7: 27 queries vs 6 updates): one primary accepts updates and
//! ships its write-ahead log to any number of replicas, each serving
//! the full read surface from its own in-memory store.
//!
//! * [`proto`] — the framed binary wire protocol (magic, type, length,
//!   CRC-32), snapshot and record frames, heartbeats, acks.
//! * [`primary`] — accept replicas, cut consistent snapshots under the
//!   write lock, stream committed WAL records, track per-replica acked
//!   LSNs.
//! * [`replica`] — snapshot bootstrap, batch-apply commits under the
//!   write lock, ack progress, reconnect with capped backoff (resume
//!   from the applied LSN, or re-bootstrap when checkpoint truncation
//!   outran it).
//!
//! The subsystem is deliberately server-agnostic: both ends operate on
//! `Arc<RwLock<StoredDb<D>>>`, the exact shape `mct-server` keeps its
//! database in, so `mctd` wires replication next to HTTP serving
//! without a dependency cycle. Observability: `repl.lag_bytes` /
//! `repl.lag_records` / `repl.applied_lsn` gauges and
//! `repl.snapshots` / `repl.reconnects` counters on both ends.
//! Protocol details and invariants: DESIGN.md §16.

pub mod primary;
pub mod proto;
pub mod replica;

pub use primary::{start_primary, PrimaryCfg, PrimaryHandle, ReplicaStatus};
pub use proto::{Frame, VERSION};
pub use replica::{start_replica, ReplicaCfg, ReplicaHandle};
