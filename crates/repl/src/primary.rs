//! The primary side of WAL shipping: accept replicas, bootstrap them
//! from a consistent snapshot (or resume them inside the live log),
//! then stream committed records as they appear.
//!
//! ## Snapshot cut
//!
//! A snapshot must capture *exactly* the committed state at one LSN.
//! The cut runs under the database **write** lock: annotate everything
//! (so no dirty color trees ship), `sync()` if anything is dirty (so
//! the pages equal the committed state), then copy every raw page and
//! the catalog into memory. The frames stream *after* the lock drops —
//! a bootstrap never blocks the primary for longer than one
//! memory-speed page copy.
//!
//! ## Streaming
//!
//! The stream thread polls [`Wal::read_committed_after`] through
//! [`BufferPool::with_wal`] — the same mutex `commit` and `checkpoint`
//! hold for their whole multi-step sequences, so a tail read can never
//! observe a checkpoint relocation half-done (see the wal module's
//! relocation test). Only records at or below the last commit are ever
//! shipped: a replica, by construction, applies committed prefixes.
//!
//! ## Acking
//!
//! A per-connection reader thread consumes [`Frame::Ack`] messages and
//! records each replica's applied LSN in the shared registry, exported
//! through [`PrimaryHandle::replicas`] and the `repl.lag_*` gauges.
//!
//! [`Wal::read_committed_after`]: mct_storage::Wal::read_committed_after
//! [`BufferPool::with_wal`]: mct_storage::BufferPool::with_wal

use crate::proto::{self, Frame};
use mct_core::StoredDb;
use mct_obs::{Counter, Gauge};
use mct_storage::{DiskManager, PageId, ReplRecord, StorageError, TailCursor, PAGE_SIZE};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Primary-side tunables.
#[derive(Clone, Debug)]
pub struct PrimaryCfg {
    /// The primary's HTTP address (`host:port`), advertised to
    /// replicas so they can point rejected `/update`s at it.
    pub advertise_http: String,
    /// How often the stream thread polls the WAL for new commits.
    pub poll_interval: Duration,
    /// Per-poll byte budget — bounds how long one poll holds the WAL
    /// mutex and how much memory a batch pins.
    pub max_batch_bytes: u64,
    /// Fault injection for boundary-kill tests: after this many frames
    /// (counted across all connections), every send fails and the
    /// acceptor stops — the primary behaves as if it crashed at a
    /// message boundary. `None` in production.
    pub fail_after_frames: Option<u64>,
}

impl Default for PrimaryCfg {
    fn default() -> Self {
        PrimaryCfg {
            advertise_http: String::new(),
            poll_interval: Duration::from_millis(50),
            max_batch_bytes: 1 << 20,
            fail_after_frames: None,
        }
    }
}

/// What the primary knows about one replica.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStatus {
    /// Highest commit LSN the replica has acked.
    pub acked_lsn: u64,
    /// Committed WAL bytes not yet streamed to it.
    pub lag_bytes: u64,
    /// Is the connection currently up?
    pub connected: bool,
}

struct Shared {
    shutdown: AtomicBool,
    /// Remaining frame budget when fault injection is armed (drops to
    /// zero and below = crashed); `i64::MAX` when not armed.
    frame_budget: AtomicI64,
    registry: Mutex<HashMap<String, ReplicaStatus>>,
    snapshots: Counter,
    lag_bytes: Gauge,
    lag_records: Gauge,
}

impl Shared {
    fn crashed(&self) -> bool {
        self.frame_budget.load(Ordering::SeqCst) <= 0
    }

    /// Export the aggregate lag gauges: worst lag over connected
    /// replicas (a primary with no replicas exports 0).
    fn export_lag(&self, committed_lsn: u64) {
        let reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        let mut worst_bytes = 0u64;
        let mut worst_records = 0u64;
        for st in reg.values().filter(|s| s.connected) {
            worst_bytes = worst_bytes.max(st.lag_bytes);
            worst_records = worst_records.max(committed_lsn.saturating_sub(st.acked_lsn));
        }
        self.lag_bytes.set(worst_bytes);
        self.lag_records.set(worst_records);
    }
}

/// A running replication listener. Dropping the handle does not stop
/// it; call [`PrimaryHandle::shutdown`].
pub struct PrimaryHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl PrimaryHandle {
    /// Bound address of the replication listener.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Snapshot of the per-replica status registry, sorted by id.
    pub fn replicas(&self) -> Vec<(String, ReplicaStatus)> {
        let reg = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<_> = reg.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Has fault injection exhausted the frame budget? (Test hook for
    /// the boundary-kill suite; always false without
    /// [`PrimaryCfg::fail_after_frames`].)
    pub fn crash_injected(&self) -> bool {
        self.shared.crashed()
    }

    /// Lowest acked LSN across connected replicas (`None` when no
    /// replica is connected).
    pub fn min_acked_lsn(&self) -> Option<u64> {
        self.replicas()
            .into_iter()
            .filter(|(_, s)| s.connected)
            .map(|(_, s)| s.acked_lsn)
            .min()
    }

    /// Stop accepting, tear down every replica connection, and join
    /// all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is parked in accept(2).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let conns: Vec<_> = {
            let mut guard = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for c in conns {
            let _ = c.join();
        }
    }
}

fn sio(e: StorageError) -> io::Error {
    io::Error::other(format!("storage: {e}"))
}

/// Start serving the replication protocol on `listener` over the
/// shared database. The database must have a WAL attached — the WAL is
/// the thing being shipped.
pub fn start_primary<D>(
    listener: TcpListener,
    db: Arc<RwLock<StoredDb<D>>>,
    cfg: PrimaryCfg,
) -> io::Result<PrimaryHandle>
where
    D: DiskManager + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        frame_budget: AtomicI64::new(match cfg.fail_after_frames {
            Some(n) => i64::try_from(n).unwrap_or(i64::MAX),
            None => i64::MAX,
        }),
        registry: Mutex::new(HashMap::new()),
        snapshots: mct_obs::counter("repl.snapshots"),
        lag_bytes: mct_obs::gauge("repl.lag_bytes"),
        lag_records: mct_obs::gauge("repl.lag_records"),
    });
    let conns = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("mct-repl-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) || shared.crashed() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let db = Arc::clone(&db);
                    let cfg = cfg.clone();
                    let handle = std::thread::Builder::new()
                        .name("mct-repl-conn".to_string())
                        .spawn(move || {
                            let _ = serve_replica(stream, &db, &cfg, &shared);
                        });
                    if let Ok(h) = handle {
                        conns
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(h);
                    }
                }
            })?
    };

    Ok(PrimaryHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        conns,
    })
}

/// Send one frame, charging the fault-injection budget. When the
/// budget runs dry the socket is slammed shut — from the replica's
/// side this is indistinguishable from the primary dying at a message
/// boundary, which is exactly what the crash tests want.
fn send(stream: &mut TcpStream, shared: &Shared, frame: &Frame) -> io::Result<()> {
    if shared.frame_budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
        let _ = stream.shutdown(Shutdown::Both);
        return Err(io::Error::other("injected primary crash at frame boundary"));
    }
    proto::write_frame(stream, frame)
}

/// Clears a replica's `connected` flag on any exit path.
struct Disconnect<'a>(&'a Shared, String);

impl Drop for Disconnect<'_> {
    fn drop(&mut self) {
        let mut reg = self
            .0
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(st) = reg.get_mut(&self.1) {
            st.connected = false;
        }
    }
}

/// Serve one replica connection to completion: HELLO, resume-or-
/// snapshot, then stream until disconnect or shutdown.
fn serve_replica<D>(
    mut stream: TcpStream,
    db: &Arc<RwLock<StoredDb<D>>>,
    cfg: &PrimaryCfg,
    shared: &Arc<Shared>,
) -> io::Result<()>
where
    D: DiskManager + Sync + 'static,
{
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;

    let (replica_lsn, replica_id) = match proto::read_frame(&mut stream)? {
        Frame::Hello {
            version,
            last_applied_lsn,
            replica_id,
        } => {
            if version != proto::VERSION {
                return Err(io::Error::other(format!(
                    "replica speaks protocol v{version}, primary v{}",
                    proto::VERSION
                )));
            }
            (last_applied_lsn, replica_id)
        }
        other => return Err(io::Error::other(format!("expected HELLO, got {other:?}"))),
    };
    let replica_id = if replica_id.is_empty() {
        stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "replica".to_string())
    } else {
        replica_id
    };

    {
        let mut reg = shared
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let st = reg.entry(replica_id.clone()).or_default();
        st.connected = true;
        st.acked_lsn = replica_lsn;
    }
    let _disconnect = Disconnect(shared, replica_id.clone());

    // Resume iff the replica's LSN is still inside the live log.
    let resumable = replica_lsn > 0 && {
        let dbr = db.read().unwrap_or_else(PoisonError::into_inner);
        dbr.pool
            .with_wal(|w| Ok((w.resume_floor(), w.committed_lsn())))
            .map(|(floor, committed)| floor <= replica_lsn && replica_lsn <= committed)
            .map_err(sio)?
    };

    let mut cursor = TailCursor::new();
    let after_lsn = if resumable {
        send(
            &mut stream,
            shared,
            &Frame::Resume {
                from_lsn: replica_lsn,
                primary_http: cfg.advertise_http.clone(),
            },
        )?;
        replica_lsn
    } else {
        // Snapshot cut: capture the committed state at one LSN under
        // the write lock, stream it after the lock drops.
        let (snap_lsn, num_pages, pages, catalog) = {
            let mut dbw = db.write().unwrap_or_else(PoisonError::into_inner);
            dbw.ensure_all_annotated().map_err(sio)?;
            let committed = dbw.pool.with_wal(|w| Ok(w.committed_lsn())).map_err(sio)?;
            if dbw.pool.dirty_since_commit_count() > 0 || committed == 0 {
                dbw.sync().map_err(sio)?;
            }
            let snap_lsn = dbw.pool.with_wal(|w| Ok(w.committed_lsn())).map_err(sio)?;
            let num_pages = dbw.pool.num_pages();
            let mut pages = Vec::with_capacity(num_pages as usize);
            let mut buf = [0u8; PAGE_SIZE];
            for p in 0..num_pages {
                dbw.pool.read_page_raw(PageId(p), &mut buf).map_err(sio)?;
                pages.push(buf.to_vec());
            }
            (snap_lsn, num_pages, pages, dbw.snapshot_catalog())
        };
        shared.snapshots.inc();
        send(
            &mut stream,
            shared,
            &Frame::SnapBegin {
                lsn: snap_lsn,
                num_pages,
                primary_http: cfg.advertise_http.clone(),
                catalog,
            },
        )?;
        for (p, image) in pages.into_iter().enumerate() {
            send(
                &mut stream,
                shared,
                &Frame::SnapPage {
                    page: p as u32,
                    image,
                },
            )?;
        }
        send(&mut stream, shared, &Frame::SnapEnd)?;
        snap_lsn
    };

    // ACK reader: a second thread on a cloned handle, so acks flow
    // while the stream side sits in a poll sleep.
    let ack_stop = Arc::new(AtomicBool::new(false));
    let ack_reader = {
        let mut rd = stream.try_clone()?;
        rd.set_read_timeout(Some(Duration::from_millis(500)))?;
        let stop = Arc::clone(&ack_stop);
        let shared = Arc::clone(shared);
        let id = replica_id.clone();
        std::thread::Builder::new()
            .name("mct-repl-ack".to_string())
            .spawn(move || loop {
                match proto::read_frame_idle(&mut rd, &stop) {
                    Ok(Some(Frame::Ack { applied_lsn })) => {
                        let mut reg = shared
                            .registry
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if let Some(st) = reg.get_mut(&id) {
                            st.acked_lsn = st.acked_lsn.max(applied_lsn);
                        }
                    }
                    Ok(Some(_)) => continue, // tolerate unexpected frames
                    Ok(None) | Err(_) => return,
                }
            })?
    };

    let result = stream_committed(
        &mut stream,
        db,
        cfg,
        shared,
        &replica_id,
        &mut cursor,
        after_lsn,
    );

    ack_stop.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = ack_reader.join();
    result
}

/// Poll the WAL and ship committed records until shutdown, crash
/// injection, or a connection error.
fn stream_committed<D>(
    stream: &mut TcpStream,
    db: &Arc<RwLock<StoredDb<D>>>,
    cfg: &PrimaryCfg,
    shared: &Shared,
    replica_id: &str,
    cursor: &mut TailCursor,
    after_lsn: u64,
) -> io::Result<()>
where
    D: DiskManager + Sync + 'static,
{
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (records, remaining, committed) = {
            let dbr = db.read().unwrap_or_else(PoisonError::into_inner);
            dbr.pool
                .with_wal(|w| {
                    let (recs, rem) =
                        w.read_committed_after(cursor, after_lsn, cfg.max_batch_bytes)?;
                    Ok((recs, rem, w.committed_lsn()))
                })
                .map_err(sio)?
        };
        let idle = records.is_empty() && remaining == 0;
        for rec in records {
            let frame = match rec {
                ReplRecord::Image { lsn, page, image } => Frame::RecImage {
                    lsn,
                    page: page.0,
                    image,
                },
                ReplRecord::Commit {
                    lsn,
                    num_pages,
                    catalog,
                    checkpoint,
                } => Frame::RecCommit {
                    lsn,
                    checkpoint,
                    num_pages,
                    catalog,
                },
            };
            send(stream, shared, &frame)?;
        }
        send(
            stream,
            shared,
            &Frame::Heartbeat {
                committed_lsn: committed,
                lag_bytes: remaining,
            },
        )?;
        {
            let mut reg = shared
                .registry
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(st) = reg.get_mut(replica_id) {
                st.lag_bytes = remaining;
            }
        }
        shared.export_lag(committed);
        if idle {
            std::thread::sleep(cfg.poll_interval);
        }
    }
}
