//! The replica side of WAL shipping: bootstrap from a snapshot, apply
//! streamed commits under the server's write lock, ack progress, and
//! reconnect (resuming or re-bootstrapping) when the primary goes away.
//!
//! ## Apply protocol
//!
//! Image frames are buffered in memory; nothing touches the store
//! until the matching commit frame arrives, and then the whole batch
//! is applied under one write-lock section ([`StoredDb::apply_repl_image`]
//! per page + [`StoredDb::apply_repl_commit`]). Readers on the serving
//! side therefore only ever observe committed prefixes — the same
//! atomicity the primary's own readers get from its commit path.
//!
//! ## Reconnect
//!
//! On any stream error the replica reconnects with capped exponential
//! backoff, presenting its last applied LSN. The primary answers
//! `RESUME` when that LSN is still inside its live log; otherwise
//! (checkpoint truncation outran us) it sends a fresh snapshot and the
//! replica swaps in a whole new store, lifting the generation past the
//! old one so plan caches cannot serve stale plans.

use crate::proto::{self, Frame};
use mct_core::StoredDb;
use mct_obs::{Counter, Gauge};
use mct_storage::{DiskManager, MemDisk, PageId};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Replica-side tunables.
#[derive(Clone, Debug)]
pub struct ReplicaCfg {
    /// The primary's replication listener, `host:port`.
    pub primary: String,
    /// Stable identity reported in `HELLO` (shows up in the primary's
    /// status registry). Empty = let the primary use the peer address.
    pub replica_id: String,
    /// Buffer-pool capacity for the local store.
    pub pool_bytes: usize,
    /// First reconnect delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Reconnect delay cap.
    pub backoff_cap: Duration,
    /// How many connect attempts the *initial* bootstrap makes before
    /// [`start_replica`] gives up (later reconnects retry forever).
    pub connect_attempts: u32,
}

impl Default for ReplicaCfg {
    fn default() -> Self {
        ReplicaCfg {
            primary: String::new(),
            replica_id: String::new(),
            pool_bytes: 128 << 20,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            connect_attempts: 20,
        }
    }
}

struct Engine {
    cfg: ReplicaCfg,
    db: Arc<RwLock<StoredDb<MemDisk>>>,
    applied: AtomicU64,
    shutdown: AtomicBool,
    primary_http: Mutex<String>,
    snapshots: Counter,
    reconnects: Counter,
    lag_bytes: Gauge,
    lag_records: Gauge,
    applied_gauge: Gauge,
}

/// A running replica: the shared store it keeps in sync, plus the
/// applier thread. Serve reads from [`ReplicaHandle::db`]; call
/// [`ReplicaHandle::shutdown`] to stop.
pub struct ReplicaHandle {
    engine: Arc<Engine>,
    applier: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// The replicated store (share it with a server).
    pub fn db(&self) -> Arc<RwLock<StoredDb<MemDisk>>> {
        Arc::clone(&self.engine.db)
    }

    /// The primary's HTTP address, as advertised during bootstrap —
    /// where a replica's `421` responses point.
    pub fn primary_http(&self) -> String {
        self.engine
            .primary_http
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// LSN of the last commit applied locally.
    pub fn applied_lsn(&self) -> u64 {
        self.engine.applied.load(Ordering::SeqCst)
    }

    /// Block until the applied LSN reaches `lsn` (true) or `timeout`
    /// passes (false). Test/ops helper for "read your writes".
    pub fn wait_applied(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_lsn() < lsn {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Stop applying and join the applier thread. The store stays
    /// usable (frozen at the last applied commit).
    pub fn shutdown(mut self) {
        self.engine.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.applier.take() {
            let _ = a.join();
        }
    }
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other(format!("no address resolved for {addr}")))?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

fn sio(e: mct_storage::StorageError) -> io::Error {
    io::Error::other(format!("storage: {e}"))
}

/// Read a full snapshot (after its `SnapBegin`) into a fresh store.
fn read_snapshot(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    lsn: u64,
    num_pages: u32,
    catalog: &[u8],
    pool_bytes: usize,
) -> io::Result<(StoredDb<MemDisk>, u64)> {
    let mut disk = MemDisk::new();
    let mut received = 0u32;
    loop {
        match proto::read_frame_idle(stream, stop)? {
            Some(Frame::SnapPage { page, image }) => {
                while disk.num_pages() <= page {
                    disk.allocate().map_err(sio)?;
                }
                disk.write(PageId(page), &image).map_err(sio)?;
                received += 1;
            }
            Some(Frame::SnapEnd) => break,
            Some(other) => {
                return Err(io::Error::other(format!(
                    "unexpected frame inside snapshot: {other:?}"
                )))
            }
            None => return Err(io::Error::other("shutdown during snapshot")),
        }
    }
    if received != num_pages {
        return Err(io::Error::other(format!(
            "snapshot advertised {num_pages} pages, got {received}"
        )));
    }
    let store = StoredDb::from_snapshot(disk, catalog, pool_bytes).map_err(sio)?;
    Ok((store, lsn))
}

/// A freshly bootstrapped store and the snapshot LSN it captures,
/// present only when the primary answered the handshake with a
/// snapshot rather than a resume.
type Bootstrap = Option<(StoredDb<MemDisk>, u64)>;

/// Connect and perform the initial handshake, returning the stream
/// plus the bootstrap result: `Some(store)` if the primary sent a
/// snapshot, `None` if it resumed us at our applied LSN.
fn handshake(
    cfg: &ReplicaCfg,
    stop: &AtomicBool,
    applied: u64,
) -> io::Result<(TcpStream, String, Bootstrap)> {
    let mut stream = connect(&cfg.primary, Duration::from_secs(5))?;
    proto::write_frame(
        &mut stream,
        &Frame::Hello {
            version: proto::VERSION,
            last_applied_lsn: applied,
            replica_id: cfg.replica_id.clone(),
        },
    )?;
    match proto::read_frame_idle(&mut stream, stop)? {
        Some(Frame::Resume { primary_http, .. }) => Ok((stream, primary_http, None)),
        Some(Frame::SnapBegin {
            lsn,
            num_pages,
            primary_http,
            catalog,
        }) => {
            let snap = read_snapshot(&mut stream, stop, lsn, num_pages, &catalog, cfg.pool_bytes)?;
            proto::write_frame(&mut stream, &Frame::Ack { applied_lsn: snap.1 })?;
            Ok((stream, primary_http, Some(snap)))
        }
        Some(other) => Err(io::Error::other(format!(
            "expected RESUME or SNAP_BEGIN, got {other:?}"
        ))),
        None => Err(io::Error::other("shutdown during handshake")),
    }
}

/// Bootstrap from the primary and start the applier thread.
///
/// Blocks until the first snapshot is fully applied, so the returned
/// handle's store is immediately servable.
pub fn start_replica(cfg: ReplicaCfg) -> io::Result<ReplicaHandle> {
    let stop = AtomicBool::new(false);
    let mut attempt = 0u32;
    let (stream, primary_http, snap) = loop {
        match handshake(&cfg, &stop, 0) {
            Ok(ok) => break ok,
            Err(e) => {
                attempt += 1;
                if attempt >= cfg.connect_attempts.max(1) {
                    return Err(io::Error::other(format!(
                        "bootstrap from {} failed after {attempt} attempts: {e}",
                        cfg.primary
                    )));
                }
                std::thread::sleep(backoff(&cfg, attempt));
            }
        }
    };
    let (store, snap_lsn) = snap.ok_or_else(|| {
        // HELLO carried LSN 0, which is never inside the live log.
        io::Error::other("primary resumed a replica that has no store yet")
    })?;

    let engine = Arc::new(Engine {
        db: Arc::new(RwLock::new(store)),
        applied: AtomicU64::new(snap_lsn),
        shutdown: AtomicBool::new(false),
        primary_http: Mutex::new(primary_http),
        snapshots: mct_obs::counter("repl.snapshots"),
        reconnects: mct_obs::counter("repl.reconnects"),
        lag_bytes: mct_obs::gauge("repl.lag_bytes"),
        lag_records: mct_obs::gauge("repl.lag_records"),
        applied_gauge: mct_obs::gauge("repl.applied_lsn"),
        cfg,
    });
    engine.snapshots.inc();
    engine.applied_gauge.set(snap_lsn);

    let applier = {
        let engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name("mct-repl-applier".to_string())
            .spawn(move || applier_loop(&engine, stream))?
    };

    Ok(ReplicaHandle {
        engine,
        applier: Some(applier),
    })
}

fn backoff(cfg: &ReplicaCfg, attempt: u32) -> Duration {
    cfg.backoff_base
        .saturating_mul(1u32 << attempt.min(10))
        .min(cfg.backoff_cap)
}

/// Pump frames until shutdown, reconnecting (resume or re-bootstrap)
/// on any stream error.
fn applier_loop(engine: &Engine, mut stream: TcpStream) {
    loop {
        match pump(engine, &mut stream) {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                if engine.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                engine.reconnects.inc();
                let mut attempt = 0u32;
                loop {
                    std::thread::sleep(backoff(&engine.cfg, attempt));
                    attempt = attempt.saturating_add(1);
                    if engine.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let applied = engine.applied.load(Ordering::SeqCst);
                    match handshake(&engine.cfg, &engine.shutdown, applied) {
                        Ok((s, http, snap)) => {
                            *engine
                                .primary_http
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner) = http;
                            if let Some((store, lsn)) = snap {
                                // Truncation outran us: swap in the
                                // fresh store wholesale.
                                let mut w =
                                    engine.db.write().unwrap_or_else(PoisonError::into_inner);
                                let old_gen = w.generation();
                                *w = store;
                                w.set_generation_floor(old_gen + 1);
                                drop(w);
                                engine.applied.store(lsn, Ordering::SeqCst);
                                engine.applied_gauge.set(lsn);
                                engine.snapshots.inc();
                            }
                            stream = s;
                            break;
                        }
                        Err(_) => continue,
                    }
                }
            }
        }
    }
}

/// Apply frames from one healthy connection. `Ok(())` = shutdown was
/// requested; `Err` = the connection broke.
fn pump(engine: &Engine, stream: &mut TcpStream) -> io::Result<()> {
    // Images buffered until their commit frame; discarded wholesale if
    // the connection dies first (resume re-ships them).
    let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
    loop {
        let frame = match proto::read_frame_idle(stream, &engine.shutdown)? {
            Some(f) => f,
            None => return Ok(()),
        };
        match frame {
            Frame::RecImage { page, image, .. } => {
                pending.push((PageId(page), image));
            }
            Frame::RecCommit {
                lsn,
                num_pages,
                catalog,
                ..
            } => {
                {
                    let mut db = engine.db.write().unwrap_or_else(PoisonError::into_inner);
                    for (page, image) in pending.drain(..) {
                        db.apply_repl_image(page, &image).map_err(sio)?;
                    }
                    db.apply_repl_commit(num_pages, &catalog).map_err(sio)?;
                    db.ensure_all_annotated().map_err(sio)?;
                }
                engine.applied.store(lsn, Ordering::SeqCst);
                engine.applied_gauge.set(lsn);
                proto::write_frame(stream, &Frame::Ack { applied_lsn: lsn })?;
            }
            Frame::Heartbeat {
                committed_lsn,
                lag_bytes,
            } => {
                let applied = engine.applied.load(Ordering::SeqCst);
                engine.lag_bytes.set(lag_bytes);
                engine
                    .lag_records
                    .set(committed_lsn.saturating_sub(applied));
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected frame on established stream: {other:?}"
                )))
            }
        }
    }
}
