//! End-to-end replication over real sockets, in-process: snapshot
//! bootstrap, streaming catch-up, resume after reconnect, and the
//! snapshot re-bootstrap forced when checkpoint truncation outruns a
//! disconnected replica.
//!
//! Primary and replica share the process-global metric registry here,
//! so counter assertions work on before/after deltas, never absolute
//! values.

mod common;

use common::{commit_edit, fingerprint, primary_store, POOL};
use mct_repl::{start_primary, start_replica, PrimaryCfg, ReplicaCfg, ReplicaHandle};
use mct_storage::MemDisk;
use std::net::TcpListener;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

type SharedDb = Arc<RwLock<mct_core::StoredDb<MemDisk>>>;

fn fast_primary_cfg() -> PrimaryCfg {
    PrimaryCfg {
        advertise_http: "127.0.0.1:9999".to_string(),
        poll_interval: Duration::from_millis(5),
        ..PrimaryCfg::default()
    }
}

fn fast_replica_cfg(primary: &str, id: &str) -> ReplicaCfg {
    ReplicaCfg {
        primary: primary.to_string(),
        replica_id: id.to_string(),
        pool_bytes: POOL,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        connect_attempts: 50,
    }
}

fn shared(db: mct_core::StoredDb<MemDisk>) -> SharedDb {
    Arc::new(RwLock::new(db))
}

fn commit_on(db: &SharedDb, text: &str) -> u64 {
    let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
    commit_edit(&mut w, text)
}

fn replica_fingerprint(r: &ReplicaHandle) -> Vec<String> {
    let db = r.db();
    let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
    fingerprint(&mut w)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while !cond() {
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

#[test]
fn snapshot_bootstrap_then_streaming_catchup() {
    let db = shared(primary_store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    let replica = start_replica(fast_replica_cfg(&addr, "r1")).unwrap();
    assert_eq!(replica.primary_http(), "127.0.0.1:9999");
    assert!(replica.applied_lsn() > 0, "bootstrap carries the snapshot LSN");

    // Bootstrap state matches the primary exactly.
    let primary_fp = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        fingerprint(&mut w)
    };
    assert_eq!(replica_fingerprint(&replica), primary_fp);

    // Stream three committed edits; the replica converges to each.
    for i in 0..3 {
        let lsn = commit_on(&db, &format!("Edit {i}"));
        assert!(
            replica.wait_applied(lsn, Duration::from_secs(10)),
            "replica stuck below LSN {lsn}"
        );
    }
    let primary_fp = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        fingerprint(&mut w)
    };
    assert_eq!(replica_fingerprint(&replica), primary_fp);

    // The replica's store passes the deep checker.
    let rep = {
        let rdb = replica.db();
        let r = rdb.read().unwrap_or_else(PoisonError::into_inner);
        r.check().unwrap()
    };
    assert!(rep.is_ok(), "replica violations: {rep}");

    // Lag drains to zero at quiescence, and the primary has the ack.
    assert!(
        wait_until(Duration::from_secs(5), || {
            mct_obs::gauge("repl.lag_bytes").get() == 0
                && mct_obs::gauge("repl.lag_records").get() == 0
        }),
        "lag gauges never drained"
    );
    let applied = replica.applied_lsn();
    assert!(
        wait_until(Duration::from_secs(5), || {
            primary.min_acked_lsn() == Some(applied)
        }),
        "primary never saw the replica's ack (acked={:?}, applied={applied})",
        primary.min_acked_lsn()
    );
    let status = primary.replicas();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].0, "r1");
    assert!(status[0].1.connected);

    replica.shutdown();
    primary.shutdown();
}

#[test]
fn reconnect_resumes_from_applied_lsn_without_snapshot() {
    let db = shared(primary_store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    let replica = start_replica(fast_replica_cfg(&addr.to_string(), "r1")).unwrap();
    let lsn = commit_on(&db, "before outage");
    assert!(replica.wait_applied(lsn, Duration::from_secs(10)));

    // Baselines first: the replica starts counting reconnect attempts
    // the instant the primary goes away.
    let snapshots_before = mct_obs::counter("repl.snapshots").get();
    let reconnects_before = mct_obs::counter("repl.reconnects").get();

    // Primary goes away; more work commits while the replica is blind.
    primary.shutdown();
    let lsn = commit_on(&db, "during outage");

    // Primary comes back on the same port with the same store.
    let listener = TcpListener::bind(addr).unwrap();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    assert!(
        replica.wait_applied(lsn, Duration::from_secs(10)),
        "replica never caught up after reconnect"
    );
    let primary_fp = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        fingerprint(&mut w)
    };
    assert_eq!(replica_fingerprint(&replica), primary_fp);
    assert!(
        mct_obs::counter("repl.reconnects").get() > reconnects_before,
        "reconnect was not counted"
    );
    assert_eq!(
        mct_obs::counter("repl.snapshots").get(),
        snapshots_before,
        "a resume-eligible replica was re-snapshotted"
    );

    replica.shutdown();
    primary.shutdown();
}

#[test]
fn checkpoint_truncation_outruns_replica_and_forces_rebootstrap() {
    let db = shared(primary_store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    let replica = start_replica(fast_replica_cfg(&addr.to_string(), "r1")).unwrap();
    let lsn = commit_on(&db, "seen by replica");
    assert!(replica.wait_applied(lsn, Duration::from_secs(10)));

    // Outage; the primary commits AND checkpoints, truncating the log
    // past the replica's position.
    primary.shutdown();
    let lsn = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        commit_edit(&mut w, "beyond the checkpoint");
        w.checkpoint().unwrap();
        w.pool.with_wal(|wal| Ok(wal.committed_lsn())).unwrap()
    };
    {
        let w = db.read().unwrap_or_else(PoisonError::into_inner);
        let floor = w.pool.with_wal(|wal| Ok(wal.resume_floor())).unwrap();
        assert!(
            floor > replica.applied_lsn(),
            "test setup: checkpoint must outrun the replica (floor={floor}, applied={})",
            replica.applied_lsn()
        );
    }

    let snapshots_before = mct_obs::counter("repl.snapshots").get();

    let listener = TcpListener::bind(addr).unwrap();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    assert!(
        replica.wait_applied(lsn, Duration::from_secs(10)),
        "replica never re-bootstrapped"
    );
    let primary_fp = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        fingerprint(&mut w)
    };
    assert_eq!(replica_fingerprint(&replica), primary_fp);
    assert!(
        mct_obs::counter("repl.snapshots").get() >= snapshots_before + 2,
        "expected a fresh snapshot on both ends (primary cut + replica apply)"
    );
    let rep = {
        let rdb = replica.db();
        let r = rdb.read().unwrap_or_else(PoisonError::into_inner);
        r.check().unwrap()
    };
    assert!(rep.is_ok(), "replica violations after re-bootstrap: {rep}");

    replica.shutdown();
    primary.shutdown();
}

#[test]
fn two_replicas_converge_independently() {
    let db = shared(primary_store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let primary = start_primary(listener, Arc::clone(&db), fast_primary_cfg()).unwrap();

    let r1 = start_replica(fast_replica_cfg(&addr, "r1")).unwrap();
    let r2 = start_replica(fast_replica_cfg(&addr, "r2")).unwrap();
    let lsn = commit_on(&db, "fan out");
    assert!(r1.wait_applied(lsn, Duration::from_secs(10)));
    assert!(r2.wait_applied(lsn, Duration::from_secs(10)));

    let primary_fp = {
        let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
        fingerprint(&mut w)
    };
    assert_eq!(replica_fingerprint(&r1), primary_fp);
    assert_eq!(replica_fingerprint(&r2), primary_fp);
    assert_eq!(primary.replicas().len(), 2);

    r1.shutdown();
    r2.shutdown();
    primary.shutdown();
}
