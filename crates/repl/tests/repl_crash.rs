//! Boundary-kill sweep: the primary "crashes" (fault-injected socket
//! teardown) after frame 1, 2, 3, … of the replication conversation,
//! and after every single one of those kills the replica must hold a
//! committed prefix of the primary's history — never a torn batch —
//! with zero deep-checker violations. Same discipline as the
//! txn_crash write-boundary loop, one protocol frame at a time.

mod common;

use common::{commit_edit, fingerprint, primary_store, POOL};
use mct_repl::{start_primary, start_replica, PrimaryCfg, ReplicaCfg};
use mct_storage::MemDisk;
use std::net::TcpListener;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

type SharedDb = Arc<RwLock<mct_core::StoredDb<MemDisk>>>;

fn fp_of(db: &SharedDb) -> Vec<String> {
    let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
    fingerprint(&mut w)
}

/// Number of edits committed while the replica is (maybe) streaming.
const EDITS: u64 = 3;
/// Frame-budget sweep cap — far above what full catch-up needs; the
/// sweep stops at the first budget that allowed full catch-up.
const MAX_FRAMES: u64 = 400;

#[test]
fn kill_at_every_frame_boundary_leaves_a_committed_prefix() {
    let mut caught_up_at = None;
    for budget in 1..=MAX_FRAMES {
        let db: SharedDb = Arc::new(RwLock::new(primary_store()));
        // Committed-prefix fingerprints the replica may legally hold.
        let mut prefixes = vec![fp_of(&db)];

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let primary = start_primary(
            listener,
            Arc::clone(&db),
            PrimaryCfg {
                advertise_http: "127.0.0.1:9999".to_string(),
                poll_interval: Duration::from_millis(2),
                fail_after_frames: Some(budget),
                ..PrimaryCfg::default()
            },
        )
        .unwrap();

        let replica = match start_replica(ReplicaCfg {
            primary: addr,
            replica_id: "crash-test".to_string(),
            pool_bytes: POOL,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            connect_attempts: 2,
        }) {
            Ok(r) => r,
            Err(_) => {
                // The kill landed inside the bootstrap snapshot: the
                // replica never came up, which is itself a committed
                // prefix (the empty one). Nothing further to check.
                primary.shutdown();
                continue;
            }
        };

        let mut final_lsn = 0;
        for i in 0..EDITS {
            let mut w = db.write().unwrap_or_else(PoisonError::into_inner);
            final_lsn = commit_edit(&mut w, &format!("crash edit {i}"));
            drop(w);
            prefixes.push(fp_of(&db));
        }

        // Run until the injected crash fires or the replica fully
        // catches up — whichever happens first.
        let end = Instant::now() + Duration::from_secs(10);
        loop {
            if replica.applied_lsn() >= final_lsn || primary.crash_injected() {
                break;
            }
            assert!(Instant::now() < end, "budget {budget}: no crash, no catch-up");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Grace for frames already on the wire, then require stability.
        let mut applied = replica.applied_lsn();
        loop {
            std::thread::sleep(Duration::from_millis(100));
            let now = replica.applied_lsn();
            if now == applied {
                break;
            }
            applied = now;
            assert!(Instant::now() < end, "budget {budget}: applied LSN never settled");
        }

        let replica_db = replica.db();
        let replica_fp = {
            let mut w = replica_db.write().unwrap_or_else(PoisonError::into_inner);
            fingerprint(&mut w)
        };
        assert!(
            prefixes.contains(&replica_fp),
            "budget {budget}: replica state is not a committed prefix (applied={applied})"
        );
        let rep = {
            let r = replica_db.read().unwrap_or_else(PoisonError::into_inner);
            r.check().unwrap()
        };
        assert!(rep.is_ok(), "budget {budget}: replica violations: {rep}");

        let done = applied >= final_lsn;
        replica.shutdown();
        primary.shutdown();
        if done {
            caught_up_at = Some(budget);
            break;
        }
    }
    assert!(
        caught_up_at.is_some(),
        "no frame budget up to {MAX_FRAMES} allowed full catch-up — \
         the sweep never covered the whole conversation"
    );
}
