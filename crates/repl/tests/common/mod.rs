//! Shared fixtures for the replication integration tests: a small
//! movie database (the persist-layer test store, rebuilt on the public
//! API), a WAL-backed pool, committed mutations, and a fingerprint
//! that captures everything a query can observe.

use mct_core::{MctDatabase, McNodeId, StoredDb};
use mct_storage::{BufferPool, DiskManager, MemDisk, Wal};

pub const POOL: usize = 4 * 1024 * 1024;

/// Two hierarchies (red genres, green awards) over ten movies, five of
/// them bi-colored.
pub fn small_db() -> MctDatabase {
    let mut db = MctDatabase::new();
    let red = db.add_color("red");
    let green = db.add_color("green");
    let genre = db.new_element("movie-genre", red);
    db.set_content(genre, "Comedy");
    db.append_child(McNodeId::DOCUMENT, genre, red);
    let award = db.new_element("movie-award", green);
    db.set_content(award, "Oscar");
    db.append_child(McNodeId::DOCUMENT, award, green);
    for i in 0..10 {
        let m = db.new_element("movie", red);
        db.set_attr(m, "id", &format!("m{i}"));
        db.append_child(genre, m, red);
        let name = db.new_element("name", red);
        db.set_content(name, &format!("Movie {i}"));
        db.append_child(m, name, red);
        if i % 2 == 0 {
            db.add_node_color(m, green);
            db.append_child(award, m, green);
        }
    }
    db
}

/// A fresh WAL-backed in-memory store holding [`small_db`], synced so
/// the WAL has a committed baseline.
pub fn primary_store() -> StoredDb<MemDisk> {
    let mut pool = BufferPool::new(MemDisk::new(), POOL);
    pool.attach_wal(Wal::create(Box::new(MemDisk::new())).unwrap());
    let mut s = StoredDb::build_on(pool, small_db()).unwrap();
    s.sync().unwrap();
    s
}

/// Commit one observable mutation: rewrite the content of the first
/// `name` element to `text`. Returns the resulting committed LSN.
pub fn commit_edit<D: DiskManager>(s: &mut StoredDb<D>, text: &str) -> u64 {
    let red = s.db.color("red").unwrap();
    let n = s.postings_named(red, "name").unwrap()[0].node;
    let res: Result<(), mct_storage::StorageError> = s.with_txn(|s| s.update_content(n, text));
    res.unwrap();
    s.pool.with_wal(|w| Ok(w.committed_lsn())).unwrap()
}

/// Everything a query can observe, as one comparable value.
pub fn fingerprint<D: DiskManager>(s: &mut StoredDb<D>) -> Vec<String> {
    s.ensure_all_annotated().unwrap();
    let mut out = Vec::new();
    let palette: Vec<_> = s
        .db
        .palette
        .iter()
        .map(|(c, n)| (c, n.to_string()))
        .collect();
    for (c, name) in palette {
        for tag in ["movie-genre", "movie-award", "movie", "name"] {
            for r in s.postings_named(c, tag).unwrap() {
                out.push(format!(
                    "{name}/{tag}: n{} [{},{}]@{}",
                    r.node.0, r.code.start, r.code.end, r.code.level
                ));
                out.push(format!("content: {:?}", s.fetch_content(r.node).unwrap()));
                out.push(format!("attrs: {:?}", s.fetch_attrs(r.node).unwrap()));
            }
        }
    }
    out
}
