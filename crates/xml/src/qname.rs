//! String interning for qualified names.
//!
//! Element tags, attribute names, and processing-instruction targets are
//! interned into a [`Sym`] (a `u32` index). The rest of the system —
//! storage keys, index entries, query node tests — compares names by
//! `Sym`, never by string, which keeps hot comparisons branch-free and
//! allocation-free.

use std::collections::HashMap;
use std::fmt;

/// An interned string. `Sym`s are only meaningful relative to the
/// [`Interner`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// Index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A monotonically growing string table.
///
/// Strings are never removed; `Sym` values stay valid for the lifetime
/// of the interner. Lookup is by hash map; resolution is an indexed read.
#[derive(Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(
            u32::try_from(self.strings.len()).expect("interner overflow: more than 2^32 names"),
        );
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` if `s` was
    /// never interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.strings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("movie");
        let b = i.intern("movie");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let mut i = Interner::new();
        let a = i.intern("movie");
        let b = i.intern("actor");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "movie");
        assert_eq!(i.resolve(b), "actor");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(v, ["a", "b"]);
    }

    #[test]
    fn syms_are_dense_indices() {
        let mut i = Interner::new();
        for n in 0..100 {
            let s = i.intern(&format!("name{n}"));
            assert_eq!(s.index(), n);
        }
    }
}
