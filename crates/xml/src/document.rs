//! Arena-allocated ordered XML trees.
//!
//! A [`Document`] owns all of its nodes in a single `Vec` arena and
//! links them with `Option<NodeId>` sibling/child pointers — no `Rc`,
//! no interior mutability. Attribute nodes are chained off their owner
//! element separately from children, matching the data model (attributes
//! have a parent but are not children).

use crate::node::{NodeId, NodeKind};
use crate::qname::{Interner, Sym};

/// Per-node record in the arena.
#[derive(Clone, Debug)]
pub struct NodeData {
    /// Kind of node.
    pub kind: NodeKind,
    /// Name for elements / attributes / PIs.
    pub name: Option<Sym>,
    /// String value for text / attribute / comment / PI nodes.
    pub value: Option<Box<str>>,
    /// Parent node (attributes point at their owner element).
    pub parent: Option<NodeId>,
    /// First child (element/text/comment/PI children only).
    pub first_child: Option<NodeId>,
    /// Last child, for O(1) append.
    pub last_child: Option<NodeId>,
    /// Previous sibling in the child list.
    pub prev_sibling: Option<NodeId>,
    /// Next sibling in the child list (also chains attribute nodes).
    pub next_sibling: Option<NodeId>,
    /// Head of this element's attribute chain.
    pub first_attr: Option<NodeId>,
    /// True once the node has been detached from the tree.
    pub detached: bool,
}

impl NodeData {
    fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            name: None,
            value: None,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            first_attr: None,
            detached: false,
        }
    }
}

/// An ordered tree of XML nodes plus the name interner.
///
/// The document node is created eagerly at id 0. All structural
/// mutation goes through methods that maintain the doubly linked child
/// lists; invariants are checked in debug builds by
/// [`Document::check_invariants`].
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<NodeData>,
    /// Interner for element/attribute/PI names.
    pub names: Interner,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Create a document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData::new(NodeKind::Document)],
            names: Interner::new(),
        }
    }

    /// Create a document with arena capacity pre-reserved for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut nodes = Vec::with_capacity(n.max(1));
        nodes.push(NodeData::new(NodeKind::Document));
        Document {
            nodes,
            names: Interner::new(),
        }
    }

    /// Total number of arena slots (including detached nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the document node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].first_child.is_none()
    }

    /// Borrow a node record.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document arena overflow"));
        self.nodes.push(data);
        id
    }

    // ----- constructors ---------------------------------------------------

    /// Create a detached element node named `name`.
    pub fn create_element(&mut self, name: &str) -> NodeId {
        let sym = self.names.intern(name);
        self.create_element_sym(sym)
    }

    /// Create a detached element node with an already-interned name.
    pub fn create_element_sym(&mut self, name: Sym) -> NodeId {
        let mut d = NodeData::new(NodeKind::Element);
        d.name = Some(name);
        self.alloc(d)
    }

    /// Create a detached text node.
    pub fn create_text(&mut self, value: &str) -> NodeId {
        let mut d = NodeData::new(NodeKind::Text);
        d.value = Some(value.into());
        self.alloc(d)
    }

    /// Create a detached comment node.
    pub fn create_comment(&mut self, value: &str) -> NodeId {
        let mut d = NodeData::new(NodeKind::Comment);
        d.value = Some(value.into());
        self.alloc(d)
    }

    /// Create a detached processing-instruction node.
    pub fn create_pi(&mut self, target: &str, data: &str) -> NodeId {
        let sym = self.names.intern(target);
        let mut d = NodeData::new(NodeKind::ProcessingInstruction);
        d.name = Some(sym);
        d.value = Some(data.into());
        self.alloc(d)
    }

    // ----- structure mutation ----------------------------------------------

    /// Append `child` as the last child of `parent`.
    ///
    /// # Panics
    /// Panics if `parent` cannot have children, or `child` is attached
    /// elsewhere, or `child` is an attribute.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            self.node(parent).kind.can_have_children(),
            "append_child: parent kind {:?} cannot have children",
            self.node(parent).kind
        );
        assert!(
            self.node(child).kind != NodeKind::Attribute,
            "append_child: attributes are attached with set_attribute"
        );
        assert!(
            self.node(child).parent.is_none(),
            "append_child: child already attached"
        );
        let old_last = self.node(parent).last_child;
        {
            let c = self.node_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = old_last;
            c.next_sibling = None;
            c.detached = false;
        }
        match old_last {
            Some(last) => self.node_mut(last).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
    }

    /// Insert `child` immediately before `anchor` (which must be attached).
    pub fn insert_before(&mut self, anchor: NodeId, child: NodeId) {
        let parent = self
            .node(anchor)
            .parent
            .expect("insert_before: anchor is detached");
        assert!(
            self.node(child).parent.is_none(),
            "insert_before: child already attached"
        );
        let prev = self.node(anchor).prev_sibling;
        {
            let c = self.node_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = prev;
            c.next_sibling = Some(anchor);
            c.detached = false;
        }
        self.node_mut(anchor).prev_sibling = Some(child);
        match prev {
            Some(p) => self.node_mut(p).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
    }

    /// Detach `node` (and implicitly its subtree) from its parent.
    /// The arena slot survives; the node can be re-attached.
    pub fn detach(&mut self, node: NodeId) {
        let (parent, prev, next) = {
            let n = self.node(node);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        let Some(parent) = parent else { return };
        if self.node(node).kind == NodeKind::Attribute {
            // Unlink from the attribute chain.
            let first = self.node(parent).first_attr;
            if first == Some(node) {
                self.node_mut(parent).first_attr = next;
            } else if let Some(p) = prev {
                self.node_mut(p).next_sibling = next;
            }
            if let Some(nx) = next {
                self.node_mut(nx).prev_sibling = prev;
            }
        } else {
            match prev {
                Some(p) => self.node_mut(p).next_sibling = next,
                None => self.node_mut(parent).first_child = next,
            }
            match next {
                Some(nx) => self.node_mut(nx).prev_sibling = prev,
                None => self.node_mut(parent).last_child = prev,
            }
        }
        let n = self.node_mut(node);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
        n.detached = true;
    }

    /// Set (or replace) attribute `name` on `element`. Returns the
    /// attribute node id.
    pub fn set_attribute(&mut self, element: NodeId, name: &str, value: &str) -> NodeId {
        assert_eq!(
            self.node(element).kind,
            NodeKind::Element,
            "set_attribute: target must be an element"
        );
        let sym = self.names.intern(name);
        // Replace in place if present.
        let mut cur = self.node(element).first_attr;
        while let Some(a) = cur {
            if self.node(a).name == Some(sym) {
                self.node_mut(a).value = Some(value.into());
                return a;
            }
            cur = self.node(a).next_sibling;
        }
        let mut d = NodeData::new(NodeKind::Attribute);
        d.name = Some(sym);
        d.value = Some(value.into());
        d.parent = Some(element);
        let attr = self.alloc(d);
        // Append to the end of the chain to keep deterministic order.
        let mut tail = self.node(element).first_attr;
        match tail {
            None => self.node_mut(element).first_attr = Some(attr),
            Some(mut t) => {
                while let Some(nx) = self.node(t).next_sibling {
                    t = nx;
                }
                tail = Some(t);
                self.node_mut(t).next_sibling = Some(attr);
                self.node_mut(attr).prev_sibling = tail;
            }
        }
        attr
    }

    /// Overwrite the string value of a text/attribute/comment/PI node.
    pub fn set_value(&mut self, node: NodeId, value: &str) {
        assert!(
            !self.node(node).kind.can_have_children(),
            "set_value: node kind {:?} has no direct value",
            self.node(node).kind
        );
        self.node_mut(node).value = Some(value.into());
    }

    // ----- accessors -------------------------------------------------------

    /// `dm:parent`.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.node(node).parent
    }

    /// Kind of `node`.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.node(node).kind
    }

    /// Name symbol of `node`, if it has one.
    #[inline]
    pub fn name(&self, node: NodeId) -> Option<Sym> {
        self.node(node).name
    }

    /// Resolved name string of `node`, if it has one.
    pub fn name_str(&self, node: NodeId) -> Option<&str> {
        self.node(node).name.map(|s| self.names.resolve(s))
    }

    /// Iterate over the children of `node` in order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(node).first_child,
        }
    }

    /// Iterate over element children only.
    pub fn element_children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node)
            .filter(move |&c| self.node(c).kind == NodeKind::Element)
    }

    /// First element child named `name`, if any.
    pub fn child_named(&self, node: NodeId, name: &str) -> Option<NodeId> {
        let sym = self.names.get(name)?;
        self.children(node)
            .find(|&c| self.node(c).kind == NodeKind::Element && self.node(c).name == Some(sym))
    }

    /// Iterate over the attributes of `node` in order.
    pub fn attributes(&self, node: NodeId) -> Attributes<'_> {
        Attributes {
            doc: self,
            next: self.node(node).first_attr,
        }
    }

    /// Attribute value of `name` on `node`, if present.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        let sym = self.names.get(name)?;
        let mut cur = self.node(node).first_attr;
        while let Some(a) = cur {
            if self.node(a).name == Some(sym) {
                return self.node(a).value.as_deref();
            }
            cur = self.node(a).next_sibling;
        }
        None
    }

    /// Pre-order (document order) traversal of the subtree rooted at
    /// `node`, including `node` itself. Attributes are not visited.
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            root: node,
            next: Some(node),
        }
    }

    /// Pre-order traversal excluding `node` itself.
    pub fn descendants(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(node).skip(1)
    }

    /// Ancestors from parent to the document node.
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.node(node).parent,
        }
    }

    /// The single element child of the document node, if well-formed.
    pub fn root_element(&self) -> Option<NodeId> {
        self.element_children(NodeId::DOCUMENT).next()
    }

    /// `dm:string-value`: concatenation of all descendant text, or the
    /// node's own value for valued kinds.
    pub fn string_value(&self, node: NodeId) -> String {
        match self.node(node).kind {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                for d in self.descendants_or_self(node) {
                    if self.node(d).kind == NodeKind::Text {
                        if let Some(v) = &self.node(d).value {
                            out.push_str(v);
                        }
                    }
                }
                out
            }
            _ => self.node(node).value.as_deref().unwrap_or("").to_string(),
        }
    }

    /// `dm:typed-value` as a double, when the string value parses as one.
    pub fn typed_number(&self, node: NodeId) -> Option<f64> {
        self.string_value(node).trim().parse().ok()
    }

    /// Assign document-order positions (`0..`) by pre-order traversal
    /// from the document node. Detached subtrees get no position.
    pub fn document_order(&self) -> Vec<Option<u32>> {
        let mut order = vec![None; self.nodes.len()];
        for (pos, n) in self.descendants_or_self(NodeId::DOCUMENT).enumerate() {
            order[n.index()] = Some(pos as u32);
        }
        order
    }

    /// Count attached nodes of each interesting kind:
    /// `(elements, attributes, text_nodes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut elements = 0;
        let mut attrs = 0;
        let mut texts = 0;
        for n in self.descendants_or_self(NodeId::DOCUMENT) {
            match self.node(n).kind {
                NodeKind::Element => {
                    elements += 1;
                    attrs += self.attributes(n).count();
                }
                NodeKind::Text => texts += 1,
                _ => {}
            }
        }
        (elements, attrs, texts)
    }

    /// Deep-copy the subtree rooted at `node` into (possibly) another
    /// document, returning the new root. Names are re-interned.
    pub fn deep_copy_into(&self, node: NodeId, dst: &mut Document) -> NodeId {
        let new = match self.node(node).kind {
            NodeKind::Element => {
                let name = self.name_str(node).expect("element has a name");
                let e = dst.create_element(name);
                let attrs: Vec<(String, String)> = self
                    .attributes(node)
                    .map(|a| {
                        (
                            self.name_str(a).unwrap_or("").to_string(),
                            self.node(a).value.as_deref().unwrap_or("").to_string(),
                        )
                    })
                    .collect();
                for (n, v) in attrs {
                    dst.set_attribute(e, &n, &v);
                }
                e
            }
            NodeKind::Text => dst.create_text(self.node(node).value.as_deref().unwrap_or("")),
            NodeKind::Comment => dst.create_comment(self.node(node).value.as_deref().unwrap_or("")),
            NodeKind::ProcessingInstruction => dst.create_pi(
                self.name_str(node).unwrap_or(""),
                self.node(node).value.as_deref().unwrap_or(""),
            ),
            NodeKind::Document | NodeKind::Attribute => {
                panic!("deep_copy_into: cannot copy {:?}", self.node(node).kind)
            }
        };
        let children: Vec<NodeId> = self.children(node).collect();
        for c in children {
            let cc = self.deep_copy_into(c, dst);
            dst.append_child(new, cc);
        }
        new
    }

    /// Verify the doubly linked list invariants of the whole arena.
    /// Used by tests; cheap enough to run on moderate documents.
    pub fn check_invariants(&self) {
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if let Some(fc) = n.first_child {
                assert_eq!(self.node(fc).parent, Some(id), "first_child parent link");
                assert_eq!(self.node(fc).prev_sibling, None);
            }
            if let Some(lc) = n.last_child {
                assert_eq!(self.node(lc).parent, Some(id), "last_child parent link");
                assert_eq!(self.node(lc).next_sibling, None);
            }
            let mut prev = None;
            let mut cur = n.first_child;
            while let Some(c) = cur {
                assert_eq!(self.node(c).prev_sibling, prev, "prev_sibling chain");
                assert_eq!(self.node(c).parent, Some(id), "child parent");
                prev = cur;
                cur = self.node(c).next_sibling;
            }
            assert_eq!(n.last_child, prev, "last_child agrees with chain tail");
        }
    }
}

/// Iterator over a node's children.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Iterator over a node's attributes.
pub struct Attributes<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Attributes<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Compute successor: first child, else next sibling walking up,
        // stopping at the subtree root.
        let n = self.doc.node(cur);
        self.next = if let Some(fc) = n.first_child {
            Some(fc)
        } else {
            let mut up = cur;
            loop {
                if up == self.root {
                    break None;
                }
                if let Some(ns) = self.doc.node(up).next_sibling {
                    break Some(ns);
                }
                match self.doc.node(up).parent {
                    Some(p) => up = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

/// Iterator over ancestors, nearest first.
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_doc() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.create_element("movies");
        d.append_child(NodeId::DOCUMENT, root);
        let m1 = d.create_element("movie");
        d.append_child(root, m1);
        let name = d.create_element("name");
        d.append_child(m1, name);
        let t = d.create_text("All About Eve");
        d.append_child(name, t);
        d.set_attribute(m1, "year", "1950");
        (d, root, m1, name)
    }

    #[test]
    fn build_and_navigate() {
        let (d, root, m1, name) = movie_doc();
        d.check_invariants();
        assert_eq!(d.root_element(), Some(root));
        assert_eq!(d.parent(m1), Some(root));
        assert_eq!(d.children(root).collect::<Vec<_>>(), vec![m1]);
        assert_eq!(d.child_named(m1, "name"), Some(name));
        assert_eq!(d.attribute(m1, "year"), Some("1950"));
        assert_eq!(d.attribute(m1, "missing"), None);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let (mut d, _root, m1, name) = movie_doc();
        let extra = d.create_element("aka");
        d.append_child(m1, extra);
        let t2 = d.create_text(" (1950)");
        d.append_child(extra, t2);
        assert_eq!(d.string_value(m1), "All About Eve (1950)");
        assert_eq!(d.string_value(name), "All About Eve");
    }

    #[test]
    fn typed_number_parses() {
        let mut d = Document::new();
        let v = d.create_element("votes");
        d.append_child(NodeId::DOCUMENT, v);
        let t = d.create_text("  42 ");
        d.append_child(v, t);
        assert_eq!(d.typed_number(v), Some(42.0));
    }

    #[test]
    fn preorder_traversal_order() {
        let (d, root, m1, name) = movie_doc();
        let order: Vec<NodeId> = d.descendants_or_self(root).collect();
        assert_eq!(order[0], root);
        assert_eq!(order[1], m1);
        assert_eq!(order[2], name);
        assert_eq!(order.len(), 4); // + text node
    }

    #[test]
    fn document_order_positions() {
        let (d, root, m1, _) = movie_doc();
        let ord = d.document_order();
        assert_eq!(ord[NodeId::DOCUMENT.index()], Some(0));
        assert!(ord[root.index()] < ord[m1.index()]);
    }

    #[test]
    fn detach_and_reattach() {
        let (mut d, root, m1, _name) = movie_doc();
        let m2 = d.create_element("movie");
        d.append_child(root, m2);
        d.detach(m1);
        d.check_invariants();
        assert_eq!(d.children(root).collect::<Vec<_>>(), vec![m2]);
        assert!(d.node(m1).detached);
        d.append_child(root, m1);
        d.check_invariants();
        assert_eq!(d.children(root).collect::<Vec<_>>(), vec![m2, m1]);
        assert!(!d.node(m1).detached);
    }

    #[test]
    fn detach_middle_child_repairs_links() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.append_child(NodeId::DOCUMENT, r);
        let a = d.create_element("a");
        let b = d.create_element("b");
        let c = d.create_element("c");
        d.append_child(r, a);
        d.append_child(r, b);
        d.append_child(r, c);
        d.detach(b);
        d.check_invariants();
        assert_eq!(d.children(r).collect::<Vec<_>>(), vec![a, c]);
    }

    #[test]
    fn insert_before_head_and_middle() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.append_child(NodeId::DOCUMENT, r);
        let b = d.create_element("b");
        d.append_child(r, b);
        let a = d.create_element("a");
        d.insert_before(b, a);
        let ab = d.create_element("ab");
        d.insert_before(b, ab);
        d.check_invariants();
        let names: Vec<&str> = d.children(r).filter_map(|c| d.name_str(c)).collect();
        assert_eq!(names, ["a", "ab", "b"]);
    }

    #[test]
    fn set_attribute_replaces_in_place() {
        let (mut d, _, m1, _) = movie_doc();
        let a1 = d.set_attribute(m1, "year", "1951");
        assert_eq!(d.attribute(m1, "year"), Some("1951"));
        let a2 = d.set_attribute(m1, "year", "1952");
        assert_eq!(a1, a2, "replacement keeps node identity");
        assert_eq!(d.attributes(m1).count(), 1);
    }

    #[test]
    fn multiple_attributes_keep_order() {
        let (mut d, _, m1, _) = movie_doc();
        d.set_attribute(m1, "id", "m1");
        d.set_attribute(m1, "genre", "drama");
        let names: Vec<&str> = d.attributes(m1).filter_map(|a| d.name_str(a)).collect();
        assert_eq!(names, ["year", "id", "genre"]);
    }

    #[test]
    fn detach_attribute() {
        let (mut d, _, m1, _) = movie_doc();
        let id = d.set_attribute(m1, "id", "m1");
        d.detach(id);
        assert_eq!(d.attribute(m1, "id"), None);
        assert_eq!(d.attribute(m1, "year"), Some("1950"));
    }

    #[test]
    fn counts_nodes() {
        let (d, ..) = movie_doc();
        let (e, a, t) = d.counts();
        assert_eq!((e, a, t), (3, 1, 1));
    }

    #[test]
    fn deep_copy_into_other_document() {
        let (d, _, m1, _) = movie_doc();
        let mut dst = Document::new();
        let copy = d.deep_copy_into(m1, &mut dst);
        dst.append_child(NodeId::DOCUMENT, copy);
        dst.check_invariants();
        assert_eq!(dst.name_str(copy), Some("movie"));
        assert_eq!(dst.attribute(copy, "year"), Some("1950"));
        assert_eq!(dst.string_value(copy), "All About Eve");
    }

    #[test]
    fn ancestors_walk_to_document() {
        let (d, root, m1, name) = movie_doc();
        let anc: Vec<NodeId> = d.ancestors(name).collect();
        assert_eq!(anc, vec![m1, root, NodeId::DOCUMENT]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let (mut d, root, m1, _) = movie_doc();
        d.append_child(root, m1);
    }

    #[test]
    #[should_panic(expected = "cannot have children")]
    fn text_cannot_have_children() {
        let mut d = Document::new();
        let t = d.create_text("x");
        let e = d.create_element("e");
        d.append_child(t, e);
    }
}
