//! Serialization of documents back to XML text.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};
use std::fmt::Write;

/// Options controlling XML output.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOptions {
    /// Pretty-print with this many spaces per depth level; `None` emits
    /// a single line with no inter-element whitespace.
    pub indent: Option<usize>,
    /// Emit the `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
}

impl WriteOptions {
    /// Pretty-printing with 2-space indent and an XML declaration.
    pub fn pretty() -> Self {
        WriteOptions {
            indent: Some(2),
            declaration: true,
        }
    }
}

/// Serialize the whole document.
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    for child in doc.children(NodeId::DOCUMENT) {
        emit(doc, child, opts, 0, &mut out);
    }
    out
}

/// Serialize the subtree rooted at `node`.
pub fn write_node(doc: &Document, node: NodeId, opts: &WriteOptions) -> String {
    let mut out = String::new();
    emit(doc, node, opts, 0, &mut out);
    out
}

fn emit(doc: &Document, node: NodeId, opts: &WriteOptions, depth: usize, out: &mut String) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(w) = opts.indent {
            if !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
            for _ in 0..depth * w {
                out.push(' ');
            }
        }
    };
    match doc.kind(node) {
        NodeKind::Element => {
            pad(out, depth);
            let name = doc.name_str(node).expect("element has a name");
            out.push('<');
            out.push_str(name);
            for attr in doc.attributes(node) {
                let aname = doc.name_str(attr).expect("attribute has a name");
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    aname,
                    escape_attr(doc.node(attr).value.as_deref().unwrap_or(""))
                );
            }
            let mut children = doc.children(node).peekable();
            if children.peek().is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                // Text-only content stays inline even when pretty-printing.
                let text_only = doc
                    .children(node)
                    .all(|c| doc.kind(c) == NodeKind::Text);
                for c in doc.children(node) {
                    if text_only {
                        emit_inline(doc, c, out);
                    } else {
                        emit(doc, c, opts, depth + 1, out);
                    }
                }
                if !text_only {
                    pad(out, depth);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
        NodeKind::Text => {
            pad(out, depth);
            out.push_str(&escape_text(doc.node(node).value.as_deref().unwrap_or("")));
        }
        NodeKind::Comment => {
            pad(out, depth);
            let _ = write!(
                out,
                "<!--{}-->",
                doc.node(node).value.as_deref().unwrap_or("")
            );
        }
        NodeKind::ProcessingInstruction => {
            pad(out, depth);
            let _ = write!(
                out,
                "<?{} {}?>",
                doc.name_str(node).unwrap_or(""),
                doc.node(node).value.as_deref().unwrap_or("")
            );
        }
        NodeKind::Document => {
            for c in doc.children(node) {
                emit(doc, c, opts, depth, out);
            }
        }
        NodeKind::Attribute => panic!("write_node: attributes are emitted with their element"),
    }
}

fn emit_inline(doc: &Document, node: NodeId, out: &mut String) {
    if doc.kind(node) == NodeKind::Text {
        out.push_str(&escape_text(doc.node(node).value.as_deref().unwrap_or("")));
    }
}

/// Escape character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape an attribute value (double-quote context).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_simple() {
        let src = r#"<movies><movie year="1950"><name>All About Eve</name></movie></movies>"#;
        let d = parse(src).unwrap();
        let out = write_document(&d, &WriteOptions::default());
        assert_eq!(out, src);
    }

    #[test]
    fn escaping_roundtrips() {
        let d = {
            let mut d = Document::new();
            let e = d.create_element("m");
            d.append_child(NodeId::DOCUMENT, e);
            d.set_attribute(e, "t", "a&b\"c<d");
            let t = d.create_text("x<y & z>w");
            d.append_child(e, t);
            d
        };
        let out = write_document(&d, &WriteOptions::default());
        let d2 = parse(&out).unwrap();
        let r = d2.root_element().unwrap();
        assert_eq!(d2.attribute(r, "t"), Some("a&b\"c<d"));
        assert_eq!(d2.string_value(r), "x<y & z>w");
    }

    #[test]
    fn empty_element_self_closes() {
        let d = parse("<a><b></b></a>").unwrap();
        let out = write_document(&d, &WriteOptions::default());
        assert_eq!(out, "<a><b/></a>");
    }

    #[test]
    fn pretty_print_indents() {
        let d = parse("<a><b><c>t</c></b></a>").unwrap();
        let out = write_document(&d, &WriteOptions::pretty());
        assert!(out.contains("\n  <b>"));
        assert!(out.contains("\n    <c>t</c>"));
        // Pretty output must re-parse to the same logical tree.
        let d2 = parse(&out).unwrap();
        assert_eq!(d2.string_value(d2.root_element().unwrap()), "t");
    }

    #[test]
    fn write_subtree_only() {
        let d = parse("<a><b>x</b><c/></a>").unwrap();
        let root = d.root_element().unwrap();
        let b = d.child_named(root, "b").unwrap();
        assert_eq!(write_node(&d, b, &WriteOptions::default()), "<b>x</b>");
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        let src = "<a><!--note--><?t data?></a>";
        let d = parse(src).unwrap();
        assert_eq!(write_document(&d, &WriteOptions::default()), src);
    }
}
