//! # mct-xml — XML data model substrate
//!
//! This crate implements the slice of the W3C XML data model ("XQuery 1.0
//! and XPath 2.0 Data Model") that the multi-colored tree (MCT) system
//! builds on:
//!
//! * [`qname`] — a compact string interner for element/attribute names,
//!   so that the rest of the system compares names as `u32`s.
//! * [`node`] — the node kinds of the data model and the arena node id.
//! * [`document`] — an arena-allocated ordered tree of nodes with the
//!   classic accessors (`parent`, `children`, `attributes`,
//!   `string-value`, `typed-value`, document order).
//! * [`parser`] — a hand-written, dependency-free XML parser for the
//!   subset needed here (elements, attributes, text, CDATA, comments,
//!   processing instructions, character/entity references).
//! * [`writer`] — serialization back to XML text with proper escaping.
//! * [`dtd`] — DTD-style schemas (content models with `? + *`
//!   quantifiers), document validation, functional dependencies over
//!   DTD paths, and the paper's Definition 3.3 *shallow*/*deep*
//!   classification (XNF-based, after Arenas & Libkin).
//!
//! The MCT crates treat a plain XML document as the degenerate
//! single-color case; everything color-aware lives in `mct-core`.

pub mod document;
pub mod dtd;
pub mod node;
pub mod parser;
pub mod qname;
pub mod writer;

pub use document::{Document, NodeData};
pub use dtd::{AttrDecl, ContentParticle, Dtd, ElementDecl, Fd, FdTarget, Quantifier};
pub use node::{NodeId, NodeKind};
pub use parser::{parse, ParseError};
pub use qname::{Interner, Sym};
pub use writer::{write_document, write_node, WriteOptions};
