//! DTD-style schemas, validation, and the paper's shallow/deep test.
//!
//! The paper (Definition 3.3, after Arenas & Libkin's XNF) calls a
//! schema `(D, F)` — a DTD plus functional dependencies — *shallow* iff
//! for every non-trivial FD `S → p.@attr` or `S → p.content` implied by
//! `(D, F)`, the FD `S → p` is also implied; otherwise it is *deep*.
//!
//! We implement a practical FD system over DTD paths with the tree
//! axioms:
//!
//! * **reflexivity** — `S → p` for every `p ∈ S`;
//! * **ancestor rule** — a node determines its ancestors (`S → p`
//!   implies `S → prefix(p)`), because a tree node has one parent;
//! * **node-property rule** — a node determines its own attributes and
//!   content (`S → p` implies `S → p.@a` and `S → p.content`);
//! * **transitivity** over the declared FDs.
//!
//! Implication is decided by a fixpoint chase over these axioms and the
//! declared FDs. Since the only FDs that can *introduce* an `@attr` /
//! `content` right-hand side (other than via the node-property rule,
//! which makes them trivially shallow) are declared, it suffices to
//! check each declared attr/content FD against the closure of its own
//! left-hand side — exactly what [`Dtd::is_shallow`] does.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

/// Occurrence quantifier in a content model, as in DTDs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    /// Exactly one.
    One,
    /// `?` — zero or one.
    Optional,
    /// `+` — one or more.
    Plus,
    /// `*` — zero or more.
    Star,
}

impl Quantifier {
    /// Minimum number of occurrences.
    pub fn min(self) -> usize {
        match self {
            Quantifier::One | Quantifier::Plus => 1,
            Quantifier::Optional | Quantifier::Star => 0,
        }
    }

    /// Maximum occurrences (`None` = unbounded).
    pub fn max(self) -> Option<usize> {
        match self {
            Quantifier::One | Quantifier::Optional => Some(1),
            Quantifier::Plus | Quantifier::Star => None,
        }
    }

    /// DTD suffix for display.
    pub fn suffix(self) -> &'static str {
        match self {
            Quantifier::One => "",
            Quantifier::Optional => "?",
            Quantifier::Plus => "+",
            Quantifier::Star => "*",
        }
    }
}

/// One `name quantifier` item in a sequential content model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContentParticle {
    /// Child element name.
    pub name: String,
    /// How many times it may occur.
    pub quant: Quantifier,
}

/// An attribute declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// `#REQUIRED` vs `#IMPLIED`.
    pub required: bool,
}

/// An element type declaration: a sequential content model (particles
/// in order) plus whether text content (`#PCDATA`) is allowed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElementDecl {
    /// Element type name.
    pub name: String,
    /// Ordered child particles.
    pub children: Vec<ContentParticle>,
    /// Declared attributes.
    pub attrs: Vec<AttrDecl>,
    /// Whether `#PCDATA` is allowed.
    pub has_text: bool,
}

/// A path from the DTD root, e.g. `movies/movie/name`, stored as its
/// name components.
pub type DtdPath = Vec<String>;

/// Right-hand side of a functional dependency.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum FdTarget {
    /// The node at this path.
    Path(DtdPath),
    /// `p.@attr`.
    Attr(DtdPath, String),
    /// `p.content`.
    Content(DtdPath),
}

impl FdTarget {
    /// The underlying node path.
    pub fn path(&self) -> &DtdPath {
        match self {
            FdTarget::Path(p) | FdTarget::Attr(p, _) | FdTarget::Content(p) => p,
        }
    }
}

/// A functional dependency `S → target` over DTD paths.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fd {
    /// Determinant set of targets (paths / attrs / contents).
    pub lhs: Vec<FdTarget>,
    /// Determined target.
    pub rhs: FdTarget,
}

/// A DTD: element declarations plus functional dependencies.
#[derive(Clone, Debug, Default)]
pub struct Dtd {
    /// Root element name.
    pub root: String,
    elements: HashMap<String, ElementDecl>,
    /// Declared functional dependencies.
    pub fds: Vec<Fd>,
}

/// A validation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validation error: {}", self.message)
    }
}

impl std::error::Error for ValidationError {}

impl Dtd {
    /// Start an empty DTD rooted at `root`.
    pub fn new(root: &str) -> Self {
        Dtd {
            root: root.to_string(),
            elements: HashMap::new(),
            fds: Vec::new(),
        }
    }

    /// Declare an element type. `children` uses `(name, quantifier)`
    /// pairs; `has_text` permits `#PCDATA`.
    pub fn element(
        mut self,
        name: &str,
        children: &[(&str, Quantifier)],
        attrs: &[&str],
        has_text: bool,
    ) -> Self {
        self.elements.insert(
            name.to_string(),
            ElementDecl {
                name: name.to_string(),
                children: children
                    .iter()
                    .map(|(n, q)| ContentParticle {
                        name: n.to_string(),
                        quant: *q,
                    })
                    .collect(),
                attrs: attrs
                    .iter()
                    .map(|a| AttrDecl {
                        name: a.to_string(),
                        required: false,
                    })
                    .collect(),
                has_text,
            },
        );
        self
    }

    /// Declare a functional dependency.
    pub fn fd(mut self, lhs: Vec<FdTarget>, rhs: FdTarget) -> Self {
        self.fds.push(Fd { lhs, rhs });
        self
    }

    /// Look up an element declaration.
    pub fn get(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// Iterate element declarations (unordered).
    pub fn element_decls(&self) -> impl Iterator<Item = &ElementDecl> {
        self.elements.values()
    }

    // ----- validation -------------------------------------------------------

    /// Validate a document against this DTD: root name, content models
    /// (greedy sequential matching), attribute declarations.
    pub fn validate(&self, doc: &Document) -> Result<(), ValidationError> {
        let root = doc.root_element().ok_or_else(|| ValidationError {
            message: "document has no root element".into(),
        })?;
        if doc.name_str(root) != Some(self.root.as_str()) {
            return Err(ValidationError {
                message: format!(
                    "root element is <{}>, expected <{}>",
                    doc.name_str(root).unwrap_or("?"),
                    self.root
                ),
            });
        }
        self.validate_element(doc, root)
    }

    fn validate_element(&self, doc: &Document, el: NodeId) -> Result<(), ValidationError> {
        let name = doc.name_str(el).unwrap_or("?").to_string();
        let Some(decl) = self.elements.get(&name) else {
            return Err(ValidationError {
                message: format!("undeclared element <{name}>"),
            });
        };
        // Attributes must be declared.
        for attr in doc.attributes(el) {
            let aname = doc.name_str(attr).unwrap_or("?");
            if !decl.attrs.iter().any(|a| a.name == aname) {
                return Err(ValidationError {
                    message: format!("undeclared attribute {aname} on <{name}>"),
                });
            }
        }
        // Children: greedy sequential matching against the particles.
        let mut particles = decl.children.iter();
        let mut current: Option<&ContentParticle> = particles.next();
        let mut seen = 0usize;
        for child in doc.children(el) {
            match doc.kind(child) {
                NodeKind::Text => {
                    if !decl.has_text {
                        return Err(ValidationError {
                            message: format!("text content not allowed in <{name}>"),
                        });
                    }
                    continue;
                }
                NodeKind::Comment | NodeKind::ProcessingInstruction => continue,
                NodeKind::Element => {}
                k => {
                    return Err(ValidationError {
                        message: format!("unexpected {k:?} child in <{name}>"),
                    })
                }
            }
            let cname = doc.name_str(child).unwrap_or("?");
            loop {
                match current {
                    Some(p) if p.name == cname => {
                        seen += 1;
                        if p.quant.max() == Some(seen) {
                            current = particles.next();
                            seen = 0;
                        }
                        break;
                    }
                    Some(p) if seen >= p.quant.min() => {
                        current = particles.next();
                        seen = 0;
                    }
                    Some(p) => {
                        return Err(ValidationError {
                            message: format!(
                                "in <{name}>: expected <{}>{}, found <{cname}>",
                                p.name,
                                p.quant.suffix()
                            ),
                        })
                    }
                    None => {
                        return Err(ValidationError {
                            message: format!("in <{name}>: unexpected <{cname}>"),
                        })
                    }
                }
            }
            self.validate_element(doc, child)?;
        }
        // Remaining particles must be satisfiable with zero occurrences.
        if let Some(p) = current {
            if seen < p.quant.min() {
                return Err(ValidationError {
                    message: format!(
                        "in <{name}>: missing required <{}>{}",
                        p.name,
                        p.quant.suffix()
                    ),
                });
            }
        }
        for p in particles {
            if p.quant.min() > 0 {
                return Err(ValidationError {
                    message: format!("in <{name}>: missing required <{}>", p.name),
                });
            }
        }
        Ok(())
    }

    // ----- shallow/deep classification (Definition 3.3) ---------------------

    /// Closure of a determinant set under the tree axioms and declared
    /// FDs. Returns every [`FdTarget`] implied by `lhs`.
    pub fn closure(&self, lhs: &[FdTarget]) -> BTreeSet<FdTarget> {
        // Paths longer than anything mentioned in the FDs (or the lhs)
        // cannot affect implication; capping there keeps the chase
        // terminating on recursive DTDs.
        let max_depth = self
            .fds
            .iter()
            .flat_map(|fd| fd.lhs.iter().chain(std::iter::once(&fd.rhs)))
            .chain(lhs.iter())
            .map(|t| t.path().len())
            .max()
            .unwrap_or(0);
        let mut set: BTreeSet<FdTarget> = BTreeSet::new();
        let mut frontier: Vec<FdTarget> = lhs.to_vec();
        while let Some(t) = frontier.pop() {
            if !set.insert(t.clone()) {
                continue;
            }
            if let FdTarget::Path(p) = &t {
                // Ancestor rule.
                if p.len() > 1 {
                    frontier.push(FdTarget::Path(p[..p.len() - 1].to_vec()));
                }
                // Node-property rule: a node determines its declared
                // attributes and its content; it also determines any
                // child that can occur at most once (single-child rule).
                if let Some(last) = p.last() {
                    if let Some(decl) = self.elements.get(last) {
                        for a in &decl.attrs {
                            frontier.push(FdTarget::Attr(p.clone(), a.name.clone()));
                        }
                        if decl.has_text {
                            frontier.push(FdTarget::Content(p.clone()));
                        }
                        if p.len() < max_depth {
                            for part in &decl.children {
                                if part.quant.max() == Some(1) {
                                    let mut child = p.clone();
                                    child.push(part.name.clone());
                                    frontier.push(FdTarget::Path(child));
                                }
                            }
                        }
                    }
                }
            }
            // Transitivity over declared FDs.
            for fd in &self.fds {
                if !set.contains(&fd.rhs) && fd.lhs.iter().all(|l| set.contains(l)) {
                    frontier.push(fd.rhs.clone());
                }
            }
        }
        set
    }

    /// Whether `lhs → rhs` is implied by `(D, F)`.
    pub fn implies(&self, lhs: &[FdTarget], rhs: &FdTarget) -> bool {
        self.closure(lhs).contains(rhs)
    }

    /// Definition 3.3: the schema is **shallow** iff for every
    /// non-trivial implied FD `S → p.@attr` / `S → p.content`, the FD
    /// `S → p` is also implied. Returns the offending FD when deep.
    pub fn shallow_violation(&self) -> Option<&Fd> {
        self.fds.iter().find(|fd| {
            let node_path = match &fd.rhs {
                FdTarget::Attr(p, _) | FdTarget::Content(p) => p.clone(),
                FdTarget::Path(_) => return false,
            };
            // Non-trivial: rhs not already in lhs's reflexive part.
            if fd.lhs.contains(&fd.rhs) {
                return false;
            }
            !self.implies(&fd.lhs, &FdTarget::Path(node_path))
        })
    }

    /// True when the schema is shallow per Definition 3.3.
    pub fn is_shallow(&self) -> bool {
        self.shallow_violation().is_none()
    }

    /// True when the schema is deep (not shallow).
    pub fn is_deep(&self) -> bool {
        !self.is_shallow()
    }
}

/// Convenience: build a [`DtdPath`] from `/`-separated text.
pub fn path(s: &str) -> DtdPath {
    s.split('/').map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn q(s: &str) -> Quantifier {
        match s {
            "?" => Quantifier::Optional,
            "+" => Quantifier::Plus,
            "*" => Quantifier::Star,
            _ => Quantifier::One,
        }
    }

    fn movie_dtd() -> Dtd {
        Dtd::new("movies")
            .element("movies", &[("movie", q("*"))], &[], false)
            .element(
                "movie",
                &[("name", q("")), ("actor", q("*"))],
                &["year"],
                false,
            )
            .element("name", &[], &[], true)
            .element("actor", &[("name", q(""))], &["id"], false)
    }

    #[test]
    fn validate_ok() {
        let d = parse(
            r#"<movies><movie year="1950"><name>Eve</name><actor id="a1"><name>Bette</name></actor></movie></movies>"#,
        )
        .unwrap();
        movie_dtd().validate(&d).unwrap();
    }

    #[test]
    fn validate_missing_required_child() {
        let d = parse("<movies><movie/></movies>").unwrap();
        let e = movie_dtd().validate(&d).unwrap_err();
        assert!(e.message.contains("missing required <name>"), "{e}");
    }

    #[test]
    fn validate_wrong_order() {
        let d = parse("<movies><movie><actor id='a'><name>x</name></actor><name>Eve</name></movie></movies>")
            .unwrap();
        assert!(movie_dtd().validate(&d).is_err());
    }

    #[test]
    fn validate_undeclared_attribute() {
        let d = parse(r#"<movies><movie bogus="1"><name>Eve</name></movie></movies>"#).unwrap();
        let e = movie_dtd().validate(&d).unwrap_err();
        assert!(e.message.contains("undeclared attribute"));
    }

    #[test]
    fn validate_undeclared_element() {
        let d = parse("<movies><tvshow/></movies>").unwrap();
        assert!(movie_dtd().validate(&d).is_err());
    }

    #[test]
    fn validate_unexpected_text() {
        let d = parse("<movies>stray text</movies>").unwrap();
        let e = movie_dtd().validate(&d).unwrap_err();
        assert!(e.message.contains("text content not allowed"));
    }

    #[test]
    fn validate_root_mismatch() {
        let d = parse("<films/>").unwrap();
        assert!(movie_dtd().validate(&d).is_err());
    }

    #[test]
    fn plus_quantifier_requires_one() {
        let dtd = Dtd::new("r")
            .element("r", &[("a", q("+"))], &[], false)
            .element("a", &[], &[], true);
        assert!(dtd.validate(&parse("<r/>").unwrap()).is_err());
        assert!(dtd.validate(&parse("<r><a/><a/></r>").unwrap()).is_ok());
    }

    #[test]
    fn optional_quantifier_allows_zero_or_one() {
        let dtd = Dtd::new("r")
            .element("r", &[("a", q("?"))], &[], false)
            .element("a", &[], &[], true);
        assert!(dtd.validate(&parse("<r/>").unwrap()).is_ok());
        assert!(dtd.validate(&parse("<r><a/></r>").unwrap()).is_ok());
        assert!(dtd.validate(&parse("<r><a/><a/></r>").unwrap()).is_err());
    }

    // ---- Definition 3.3 ----------------------------------------------------

    /// Shallow-1 from Example 1.1: flat, actors referenced by id; the
    /// only FDs say an actor id determines the actor node — node FDs,
    /// which never violate shallowness.
    fn shallow_schema() -> Dtd {
        Dtd::new("db")
            .element("db", &[("movie", q("*")), ("actor", q("*"))], &[], false)
            .element("movie", &[("name", q(""))], &["id", "roleIdRefs"], false)
            .element("actor", &[("name", q(""))], &["id", "roleIdRefs"], false)
            .element("name", &[], &[], true)
            .fd(
                vec![FdTarget::Attr(path("db/actor"), "id".into())],
                FdTarget::Path(path("db/actor")),
            )
    }

    /// Deep-1: actors replicated under each movie; the actor's name
    /// (content of db/movie/actor/name) is determined by the actor id,
    /// but the id does NOT determine the *node* (it occurs once per
    /// movie the actor plays in) — the classic XNF violation.
    fn deep_schema() -> Dtd {
        Dtd::new("db")
            .element("db", &[("movie", q("*"))], &[], false)
            .element("movie", &[("name", q("")), ("actor", q("*"))], &[], false)
            .element("actor", &[("name", q(""))], &["id"], false)
            .element("name", &[], &[], true)
            .fd(
                vec![FdTarget::Attr(path("db/movie/actor"), "id".into())],
                FdTarget::Content(path("db/movie/actor/name")),
            )
    }

    #[test]
    fn shallow_schema_is_shallow() {
        assert!(shallow_schema().is_shallow());
    }

    #[test]
    fn deep_schema_is_deep() {
        let d = deep_schema();
        assert!(d.is_deep());
        let v = d.shallow_violation().unwrap();
        assert!(matches!(v.rhs, FdTarget::Content(_)));
    }

    #[test]
    fn deep_becomes_shallow_when_node_is_determined() {
        // Adding "actor id determines the actor node" makes the schema
        // shallow again (the replication is declared away).
        let d = deep_schema().fd(
            vec![FdTarget::Attr(path("db/movie/actor"), "id".into())],
            FdTarget::Path(path("db/movie/actor")),
        );
        assert!(d.is_shallow());
    }

    #[test]
    fn closure_includes_ancestors_and_properties() {
        let d = deep_schema();
        let c = d.closure(&[FdTarget::Path(path("db/movie/actor"))]);
        assert!(c.contains(&FdTarget::Path(path("db/movie"))));
        assert!(c.contains(&FdTarget::Path(path("db"))));
        assert!(c.contains(&FdTarget::Attr(path("db/movie/actor"), "id".into())));
    }

    #[test]
    fn trivial_fd_is_not_a_violation() {
        // S → s for s ∈ S is trivial even when s is an attribute target.
        let d = Dtd::new("r").element("r", &[], &["a"], false).fd(
            vec![FdTarget::Attr(path("r"), "a".into())],
            FdTarget::Attr(path("r"), "a".into()),
        );
        assert!(d.is_shallow());
    }

    #[test]
    fn implies_is_reflexive_and_transitive() {
        let d = shallow_schema();
        let p = FdTarget::Path(path("db/actor"));
        assert!(d.implies(std::slice::from_ref(&p), &p));
        // id → node, node → name content (node-property via has_text on name?
        // name is a child element, not content; but id → node → its attrs).
        assert!(d.implies(
            &[FdTarget::Attr(path("db/actor"), "id".into())],
            &FdTarget::Attr(path("db/actor"), "roleIdRefs".into())
        ));
    }
}
