//! Node kinds and arena identifiers.
//!
//! The XML data model defines seven node kinds; namespace nodes are
//! folded into attributes here (they play no role in the paper), leaving
//! six concrete kinds. Nodes live in a [`crate::Document`] arena and are
//! addressed by [`NodeId`].

use std::fmt;

/// Arena index of a node inside a [`crate::Document`].
///
/// `NodeId(0)` is always the document node. Ids are stable: nodes are
/// never moved or reused, deletion is a detach (tombstone).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document (root) node of every document.
    pub const DOCUMENT: NodeId = NodeId(0);

    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node, per the XML data model (namespace nodes are
/// treated as attributes; they do not occur in the paper's workloads).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// The unique root of a document.
    Document,
    /// An element; has a name, attributes, and children.
    Element,
    /// An attribute; has a name and a string value, parented by an element.
    Attribute,
    /// Character data.
    Text,
    /// `<!-- ... -->`.
    Comment,
    /// `<?target data?>`.
    ProcessingInstruction,
}

impl NodeKind {
    /// True for kinds that may have element/text children.
    #[inline]
    pub fn can_have_children(self) -> bool {
        matches!(self, NodeKind::Document | NodeKind::Element)
    }

    /// True for kinds that carry a name (`dm:node-name` is non-empty).
    #[inline]
    pub fn has_name(self) -> bool {
        matches!(
            self,
            NodeKind::Element | NodeKind::Attribute | NodeKind::ProcessingInstruction
        )
    }

    /// Short lowercase label, matching XPath's `node-kind` strings.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Document => "document",
            NodeKind::Element => "element",
            NodeKind::Attribute => "attribute",
            NodeKind::Text => "text",
            NodeKind::Comment => "comment",
            NodeKind::ProcessingInstruction => "processing-instruction",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_id_is_zero() {
        assert_eq!(NodeId::DOCUMENT.index(), 0);
    }

    #[test]
    fn kind_capabilities() {
        assert!(NodeKind::Document.can_have_children());
        assert!(NodeKind::Element.can_have_children());
        assert!(!NodeKind::Text.can_have_children());
        assert!(!NodeKind::Attribute.can_have_children());
        assert!(NodeKind::Element.has_name());
        assert!(NodeKind::Attribute.has_name());
        assert!(!NodeKind::Text.has_name());
        assert!(!NodeKind::Document.has_name());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NodeKind::Element.label(), "element");
        assert_eq!(
            NodeKind::ProcessingInstruction.label(),
            "processing-instruction"
        );
    }
}
