//! A hand-written XML parser.
//!
//! Covers the subset of XML 1.0 the system needs: prolog, elements,
//! attributes (single or double quoted), character data, CDATA sections,
//! comments, processing instructions, the five predefined entities and
//! decimal/hex character references. DOCTYPE declarations are skipped.
//! Namespaces are treated lexically (prefixes stay part of the name).
//!
//! Whitespace-only text between elements is dropped (the paper's data is
//! data-centric, not document-centric); text adjacent to non-whitespace
//! is preserved verbatim.

use crate::document::Document;
use crate::node::NodeId;
use std::fmt;

/// Position-annotated parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an XML string into a [`Document`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        doc: Document::new(),
    };
    p.parse_document()?;
    Ok(p.doc)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    doc: Document,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        ParseError {
            message: message.into(),
            offset: self.pos,
            line,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match self.bytes[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn parse_document(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        // XML declaration.
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.parse_comment(NodeId::DOCUMENT)?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.parse_pi(NodeId::DOCUMENT)?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        self.parse_element(NodeId::DOCUMENT)?;
        self.skip_ws();
        // Trailing comments / PIs are allowed.
        while self.peek().is_some() {
            if self.starts_with("<!--") {
                self.parse_comment(NodeId::DOCUMENT)?;
            } else if self.starts_with("<?") {
                self.parse_pi(NodeId::DOCUMENT)?;
            } else {
                return Err(self.err("content after root element"));
            }
            self.skip_ws();
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        // Skip to matching '>' taking internal-subset brackets into account.
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        // SAFETY of slicing: name chars are ASCII here; multi-byte UTF-8
        // name chars also satisfy is_name_char byte-wise (>= 0x80).
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn parse_element(&mut self, parent: NodeId) -> Result<NodeId, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?.to_string();
        let el = self.doc.create_element(&name);
        self.doc.append_child(parent, el);
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(el);
                }
                Some(b) if is_name_start(b) => {
                    let aname = self.parse_name()?.to_string();
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_quoted()?;
                    self.doc.set_attribute(el, &aname, &value);
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
        // Content.
        self.parse_content(el, &name)?;
        Ok(el)
    }

    fn parse_content(&mut self, el: NodeId, name: &str) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{name}>"))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(el, &mut text);
                        self.expect("</")?;
                        let close = self.parse_name()?;
                        if close != name {
                            return Err(
                                self.err(format!("mismatched close tag </{close}> for <{name}>"))
                            );
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.flush_text(el, &mut text);
                        self.parse_comment(el)?;
                    } else if self.starts_with("<![CDATA[") {
                        self.expect("<![CDATA[")?;
                        let start = self.pos;
                        self.skip_until("]]>")?;
                        let raw = &self.bytes[start..self.pos - 3];
                        text.push_str(
                            std::str::from_utf8(raw)
                                .map_err(|_| self.err("invalid UTF-8 in CDATA"))?,
                        );
                    } else if self.starts_with("<?") {
                        self.flush_text(el, &mut text);
                        self.parse_pi(el)?;
                    } else {
                        self.flush_text(el, &mut text);
                        self.parse_element(el)?;
                    }
                }
                Some(b'&') => {
                    self.parse_reference(&mut text)?;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'<') | Some(b'&')) {
                        self.pos += 1;
                    }
                    text.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
    }

    fn flush_text(&mut self, el: NodeId, text: &mut String) {
        if !text.is_empty() {
            // Drop whitespace-only runs (data-centric XML).
            if !text.trim().is_empty() {
                let t = self.doc.create_text(text);
                self.doc.append_child(el, t);
            }
            text.clear();
        }
    }

    fn parse_comment(&mut self, parent: NodeId) -> Result<(), ParseError> {
        self.expect("<!--")?;
        let start = self.pos;
        self.skip_until("-->")?;
        let body = std::str::from_utf8(&self.bytes[start..self.pos - 3])
            .map_err(|_| self.err("invalid UTF-8 in comment"))?;
        let c = self.doc.create_comment(body);
        self.doc.append_child(parent, c);
        Ok(())
    }

    fn parse_pi(&mut self, parent: NodeId) -> Result<(), ParseError> {
        self.expect("<?")?;
        let target = self.parse_name()?.to_string();
        self.skip_ws();
        let start = self.pos;
        self.skip_until("?>")?;
        let data = std::str::from_utf8(&self.bytes[start..self.pos - 2])
            .map_err(|_| self.err("invalid UTF-8 in PI"))?
            .to_string();
        let pi = self.doc.create_pi(&target, &data);
        self.doc.append_child(parent, pi);
        Ok(())
    }

    fn parse_quoted(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => self.parse_reference(&mut out)?,
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute"))?,
                    );
                }
            }
        }
    }

    fn parse_reference(&mut self, out: &mut String) -> Result<(), ParseError> {
        self.expect("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.pos += 1;
        }
        if self.peek() != Some(b';') {
            return Err(self.err("unterminated entity reference"));
        }
        let ent = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?;
        self.pos += 1; // consume ';'
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| self.err(format!("bad character reference &{ent};")))?;
                out.push(cp);
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| self.err(format!("bad character reference &{ent};")))?;
                out.push(cp);
            }
            _ => return Err(self.err(format!("unknown entity &{ent};"))),
        }
        Ok(())
    }
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn parse_minimal() {
        let d = parse("<a/>").unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(d.name_str(root), Some("a"));
        d.check_invariants();
    }

    #[test]
    fn parse_nested_with_text() {
        let d = parse("<movie><name>All About Eve</name></movie>").unwrap();
        let root = d.root_element().unwrap();
        let name = d.child_named(root, "name").unwrap();
        assert_eq!(d.string_value(name), "All About Eve");
    }

    #[test]
    fn parse_attributes_both_quotes() {
        let d = parse(r#"<m id="m1" year='1950'/>"#).unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(d.attribute(root, "id"), Some("m1"));
        assert_eq!(d.attribute(root, "year"), Some("1950"));
    }

    #[test]
    fn parse_entities_in_text_and_attrs() {
        let d = parse(r#"<m t="a&amp;b &#65;">x &lt; y &gt; z &quot;q&quot;</m>"#).unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(d.attribute(root, "t"), Some("a&b A"));
        assert_eq!(d.string_value(root), r#"x < y > z "q""#);
    }

    #[test]
    fn parse_hex_char_reference() {
        let d = parse("<m>&#x41;&#x2014;</m>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "A\u{2014}");
    }

    #[test]
    fn parse_cdata() {
        let d = parse("<m><![CDATA[1 < 2 && 3 > 2]]></m>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "1 < 2 && 3 > 2");
    }

    #[test]
    fn parse_comments_and_pis() {
        let d = parse("<?xml version=\"1.0\"?><!-- top --><m><?php echo ?><!-- in --></m>")
            .unwrap();
        let root = d.root_element().unwrap();
        let kinds: Vec<NodeKind> = d.children(root).map(|c| d.kind(c)).collect();
        assert_eq!(
            kinds,
            vec![NodeKind::ProcessingInstruction, NodeKind::Comment]
        );
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let d = parse("<m>\n  <a/>\n  <b/>\n</m>").unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(d.children(root).count(), 2);
    }

    #[test]
    fn mixed_text_preserved() {
        let d = parse("<m>hello <b>world</b>!</m>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "hello world!");
    }

    #[test]
    fn doctype_skipped() {
        let d = parse("<!DOCTYPE m [<!ELEMENT m (#PCDATA)>]><m>x</m>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "x");
    }

    #[test]
    fn mismatched_tag_is_error() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn unterminated_element_is_error() {
        assert!(parse("<a><b></b>").is_err());
    }

    #[test]
    fn unknown_entity_is_error() {
        let e = parse("<a>&nope;</a>").unwrap_err();
        assert!(e.message.contains("unknown entity"));
    }

    #[test]
    fn content_after_root_is_error() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn error_line_numbers() {
        let e = parse("<a>\n\n<b></c>\n</a>").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let d = parse(&s).unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "x");
    }
}
