//! The physical MCT database (§6.2, Figure 10).
//!
//! [`StoredDb`] maps a logical [`MctDatabase`] onto the storage engine
//! exactly the way the paper modified Timber:
//!
//! * one **content record** per element with content, in a heap file;
//! * one **attribute record** per element with attributes;
//! * one **structural record per (element, color)** — the interval
//!   code + tag + node id — in a per-color heap file;
//! * per-color **tag indexes** over the structural records (posting
//!   lists in local document order — the inputs to structural joins);
//! * a **content index** and an **attribute index** (value → node) for
//!   selection predicates and ID/IDREF value joins;
//! * per-color **link indexes** (node → interval code): these are the
//!   paper's "additional attributes providing links back to each of the
//!   corresponding single-colored structural nodes", and the access
//!   path used by the cross-tree join.
//!
//! All query-time access goes through the shared buffer pool, so page
//! hits/misses and the warm/cold cache distinction behave as in §7.

use crate::color::ColorId;
use crate::database::{McNodeId, McNodeKind, MctDatabase};
use crate::snapshot::{self, PhysCatalog};
use mct_storage::{
    BTree, BufferPool, ContentIndex, DiskManager, FileDisk, HeapFile, IntervalCode, KeyEncoder,
    MemDisk, RecordId, StorageStats, TagIndex, Wal, PAGE_SIZE,
};
use mct_xml::Sym;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide transaction id source (ids must only be unique within
/// one WAL's unreplayed tail, so a simple counter suffices).
static NEXT_TXN_ID: AtomicU64 = AtomicU64::new(1);

/// Handle for an open transaction on a [`StoredDb`] (see
/// [`StoredDb::begin_txn`]). Carries the begin-time catalog snapshot
/// that an abort restores; dropping the handle without committing or
/// aborting leaves the transaction open, so prefer the scoped
/// [`StoredDb::with_txn`].
#[must_use = "a transaction must be committed or aborted"]
pub struct Txn {
    id: u64,
    snapshot: Vec<u8>,
}

impl Txn {
    /// This transaction's id (as framed in the WAL).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One entry of a posting list: a structural node reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StructRef {
    /// Logical node.
    pub node: McNodeId,
    /// Interval code in the posting's colored tree.
    pub code: IntervalCode,
}

/// A stored (physical) MCT database over any disk manager. The
/// default `MemDisk` is the paper's experimental configuration; a
/// `FileDisk` plus an attached WAL gives a crash-consistent on-disk
/// database (see [`StoredDb::create`] / [`StoredDb::open`]).
pub struct StoredDb<D: DiskManager = MemDisk> {
    /// The logical database (kept for construction & exact navigation).
    pub db: MctDatabase,
    /// Shared buffer pool over the disk.
    pub pool: BufferPool<D>,
    pub(crate) content_heap: HeapFile,
    pub(crate) attr_heap: HeapFile,
    pub(crate) struct_heaps: Vec<HeapFile>,
    pub(crate) tag_indexes: Vec<TagIndex>,
    pub(crate) link_indexes: Vec<BTree>,
    pub(crate) content_index: ContentIndex,
    pub(crate) attr_index: ContentIndex,
    pub(crate) content_rid: Vec<Option<RecordId>>,
    pub(crate) attr_rid: Vec<Option<RecordId>>,
    /// Monotone store generation: bumped by every write-through update
    /// (content/structure/index changes). Consumers holding derived
    /// state — prepared-plan caches, catalog snapshots — stamp the
    /// generation they were built against and treat a mismatch as
    /// stale. In-process only; a fresh open starts at 0.
    generation: u64,
    /// Auto-checkpoint policy: once a committed transaction leaves
    /// more than this many live bytes in the WAL,
    /// [`StoredDb::commit_txn`] takes a checkpoint. `None` (the
    /// default) disables the policy.
    checkpoint_bytes: Option<u64>,
}

impl StoredDb<MemDisk> {
    /// Persist a logical database in memory. Annotates every color,
    /// then bulk loads heaps and indexes. `pool_bytes` bounds the
    /// buffer pool (the paper used 256 MiB).
    pub fn build(db: MctDatabase, pool_bytes: usize) -> mct_storage::Result<StoredDb> {
        StoredDb::build_on(BufferPool::new(MemDisk::new(), pool_bytes), db)
    }
}

impl StoredDb<FileDisk> {
    /// Build a durable database under `dir` (`pages.db` + `wal.log`),
    /// replacing any previous contents. The result is not durable
    /// until the first [`StoredDb::sync`].
    pub fn create(
        dir: impl AsRef<Path>,
        db: MctDatabase,
        pool_bytes: usize,
    ) -> mct_storage::Result<StoredDb<FileDisk>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut data = FileDisk::open(&dir.join("pages.db"))?;
        data.truncate(0)?;
        let wal = Wal::create(Box::new(FileDisk::open(&dir.join("wal.log"))?))?;
        let mut pool = BufferPool::new(data, pool_bytes);
        pool.attach_wal(wal);
        StoredDb::build_on(pool, db)
    }

    /// Open a durable database under `dir`, recovering from the WAL.
    /// Returns `Ok(None)` when no commit ever became durable (fresh
    /// directory, or a crash before the first sync) — the caller
    /// should rebuild with [`StoredDb::create`].
    pub fn open(
        dir: impl AsRef<Path>,
        pool_bytes: usize,
    ) -> mct_storage::Result<Option<StoredDb<FileDisk>>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let data = FileDisk::open(&dir.join("pages.db"))?;
        let wal_disk = Box::new(FileDisk::open(&dir.join("wal.log"))?);
        StoredDb::open_with(data, wal_disk, pool_bytes)
    }
}

impl<D: DiskManager> StoredDb<D> {
    /// Persist a logical database onto a caller-supplied buffer pool
    /// (its disk must be empty). If a WAL is attached it is reset —
    /// a rebuild invalidates any previously committed state.
    pub fn build_on(mut pool: BufferPool<D>, mut db: MctDatabase) -> mct_storage::Result<StoredDb<D>> {
        if let Some(wal) = pool.wal_mut() {
            wal.reset()?;
        }
        let ncolors = db.palette.len();
        for i in 0..ncolors {
            db.ensure_annotated(ColorId(i as u8));
        }
        let mut content_heap = HeapFile::new();
        let mut attr_heap = HeapFile::new();
        let mut struct_heaps: Vec<HeapFile> = (0..ncolors).map(|_| HeapFile::new()).collect();
        let mut tag_indexes = Vec::with_capacity(ncolors);
        let mut link_indexes = Vec::with_capacity(ncolors);
        for _ in 0..ncolors {
            tag_indexes.push(TagIndex::create(&pool)?);
            link_indexes.push(BTree::create(&pool)?);
        }
        let mut content_index = ContentIndex::create(&pool)?;
        let mut attr_index = ContentIndex::create(&pool)?;
        let mut content_rid = vec![None; db.len()];
        let mut attr_rid = vec![None; db.len()];

        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            let node = db.node(n);
            if node.kind != McNodeKind::Element || node.colors.is_empty() {
                continue;
            }
            let name = node.name.expect("element named");
            // Content record + index.
            if let Some(content) = node.content.clone() {
                let rec = encode_content(n, &content);
                content_rid[i] = Some(content_heap.insert(&pool, &rec)?);
                content_index.insert(&pool, &content, u64::from(n.0))?;
            }
            // Attribute record + index.
            if !node.attrs.is_empty() {
                let pairs: Vec<(Sym, Box<str>)> = node.attrs.clone();
                let rec = encode_attrs(n, &pairs);
                attr_rid[i] = Some(attr_heap.insert(&pool, &rec)?);
                for (s, v) in &pairs {
                    let key = format!("{}={}", db.names.resolve(*s), v);
                    attr_index.insert(&pool, &key, u64::from(n.0))?;
                }
            }
            // One structural record per color; the link index points at
            // the structural record (Figure 10's back-links).
            for c in node.colors.iter() {
                let code = db.code(n, c).expect("annotated");
                let rid =
                    struct_heaps[c.index()].insert(&pool, &encode_struct(n, name, code))?;
                tag_indexes[c.index()].insert(&pool, name.0, code, u64::from(n.0))?;
                link_indexes[c.index()].insert(&pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
            }
        }
        Ok(StoredDb {
            db,
            pool,
            content_heap,
            attr_heap,
            struct_heaps,
            tag_indexes,
            link_indexes,
            content_index,
            attr_index,
            content_rid,
            attr_rid,
            generation: 0,
            checkpoint_bytes: None,
        })
    }

    // ----- durability ---------------------------------------------------------

    /// Make the current state durable: snapshot the catalog (logical
    /// database + physical directory) and commit it with every page
    /// written since the last sync through the attached WAL. Returns
    /// the commit LSN. Errors if the pool has no WAL.
    pub fn sync(&mut self) -> mct_storage::Result<u64> {
        let catalog = snapshot::encode(&self.db, &self.phys_catalog());
        self.pool.commit(&catalog)
    }

    /// Checkpoint the WAL: flush every committed page, fsync the data
    /// file, then let the log advance its start pointer past the
    /// now-redundant prefix (see [`BufferPool::checkpoint`] for the
    /// ordering invariant). Only legal at a quiescent point — errors
    /// inside an open transaction or with uncommitted dirty pages.
    /// Returns the checkpoint record's LSN.
    pub fn checkpoint(&mut self) -> mct_storage::Result<u64> {
        let catalog = snapshot::encode(&self.db, &self.phys_catalog());
        self.pool.checkpoint(&catalog)
    }

    /// Set (or clear) the auto-checkpoint threshold in live WAL bytes.
    pub fn set_checkpoint_bytes(&mut self, bytes: Option<u64>) {
        self.checkpoint_bytes = bytes;
    }

    /// The auto-checkpoint threshold, if any.
    pub fn checkpoint_bytes(&self) -> Option<u64> {
        self.checkpoint_bytes
    }

    /// Policy hook run after every durable commit: checkpoint when the
    /// live log has outgrown the configured threshold. The commit this
    /// rides on is already durable, so a checkpoint failure must not
    /// surface as a commit failure (the caller would misread it as a
    /// rollback); it is swallowed and counted instead, and the next
    /// commit retries.
    fn maybe_checkpoint(&mut self) {
        let Some(limit) = self.checkpoint_bytes else {
            return;
        };
        if self.pool.wal_bytes() <= limit {
            return;
        }
        if self.checkpoint().is_err() {
            mct_obs::counter("wal.checkpoint.errors").inc();
        }
    }

    /// Recover a database from its data disk and WAL: replay every
    /// page image up to the last durable commit, truncate any torn
    /// tail, and rebuild the `StoredDb` from the committed catalog.
    /// Returns `Ok(None)` when the WAL holds no commit.
    pub fn open_with(
        mut data: D,
        wal_disk: Box<dyn DiskManager + Send>,
        pool_bytes: usize,
    ) -> mct_storage::Result<Option<StoredDb<D>>> {
        let mut wal = Wal::open(wal_disk)?;
        let Some(state) = wal.replay_into(&mut data)? else {
            return Ok(None);
        };
        let (db, phys) = snapshot::decode(&state.catalog)?;
        let mut pool = BufferPool::new(data, pool_bytes);
        pool.attach_wal(wal);
        Ok(Some(Self::assemble(db, phys, pool)))
    }

    /// Construct a `StoredDb` from a decoded catalog over a pool whose
    /// page file already holds the state the catalog describes.
    fn assemble(db: MctDatabase, phys: PhysCatalog, pool: BufferPool<D>) -> StoredDb<D> {
        StoredDb {
            db,
            pool,
            content_heap: HeapFile::from_parts(
                phys.content_heap.0,
                phys.content_heap.1,
                phys.content_heap.2,
            ),
            attr_heap: HeapFile::from_parts(phys.attr_heap.0, phys.attr_heap.1, phys.attr_heap.2),
            struct_heaps: phys
                .struct_heaps
                .into_iter()
                .map(|(p, r, b)| HeapFile::from_parts(p, r, b))
                .collect(),
            tag_indexes: phys
                .tag_indexes
                .into_iter()
                .map(|(r, e, p)| TagIndex::from_btree(BTree::from_parts(r, e, p)))
                .collect(),
            link_indexes: phys
                .link_indexes
                .into_iter()
                .map(|(r, e, p)| BTree::from_parts(r, e, p))
                .collect(),
            content_index: ContentIndex::from_btree(BTree::from_parts(
                phys.content_index.0,
                phys.content_index.1,
                phys.content_index.2,
            )),
            attr_index: ContentIndex::from_btree(BTree::from_parts(
                phys.attr_index.0,
                phys.attr_index.1,
                phys.attr_index.2,
            )),
            content_rid: phys.content_rid,
            attr_rid: phys.attr_rid,
            generation: 0,
            checkpoint_bytes: None,
        }
    }

    // ----- replication ----------------------------------------------------------

    /// Serialize the current catalog (logical database + physical
    /// directory) — the same blob [`StoredDb::sync`] hands to the WAL
    /// commit record. Replication ships it in snapshot frames.
    pub fn snapshot_catalog(&self) -> Vec<u8> {
        snapshot::encode(&self.db, &self.phys_catalog())
    }

    /// Rebuild a `StoredDb` over `data`, a page file whose raw
    /// contents already equal the state `catalog` describes (e.g.
    /// pages shipped by a replication snapshot). No WAL is attached —
    /// a replica's durability is the primary's log, not its own.
    pub fn from_snapshot(
        data: D,
        catalog: &[u8],
        pool_bytes: usize,
    ) -> mct_storage::Result<StoredDb<D>> {
        let (db, phys) = snapshot::decode(catalog)?;
        Ok(Self::assemble(db, phys, BufferPool::new(data, pool_bytes)))
    }

    /// Apply one replicated page image (the replica's redo path).
    /// Exclusive-writer: the replica applies record batches under its
    /// server write lock, so readers only ever see committed prefixes.
    pub fn apply_repl_image(
        &mut self,
        page: mct_storage::PageId,
        image: &[u8],
    ) -> mct_storage::Result<()> {
        self.pool.install_image(page, image)
    }

    /// Apply a replicated commit: truncate the page file to the
    /// committed count, install the shipped catalog, and bump the
    /// generation so plan caches and other derived state go stale.
    /// Idempotent for checkpoint records (same catalog re-applied).
    pub fn apply_repl_commit(&mut self, num_pages: u32, catalog: &[u8]) -> mct_storage::Result<()> {
        self.pool.truncate_pages(num_pages)?;
        let (db, phys) = snapshot::decode(catalog)?;
        self.install_catalog(db, phys);
        self.generation += 1;
        Ok(())
    }

    // ----- transactions ---------------------------------------------------------

    /// Open a transaction covering both the physical pages (pool-level
    /// before-images, WAL begin/undo framing) and the logical catalog
    /// (an in-memory snapshot held by the returned handle). Until
    /// [`StoredDb::commit_txn`], any error, panic, or crash rolls the
    /// whole update back:
    ///
    /// * [`StoredDb::abort_txn`] restores pages and catalog in place;
    /// * a crash leaves the transaction a loser for WAL recovery.
    ///
    /// With a WAL attached, any work dirtied outside a transaction is
    /// committed first ("clean baseline"), so the captured undo images
    /// equal committed page contents — the precondition for recovery's
    /// redo-then-undo to land exactly on the committed state.
    pub fn begin_txn(&mut self) -> mct_storage::Result<Txn> {
        if self.pool.has_wal() && self.pool.dirty_since_commit_count() > 0 {
            self.sync()?;
        }
        let id = NEXT_TXN_ID.fetch_add(1, Ordering::Relaxed);
        let snapshot = snapshot::encode(&self.db, &self.phys_catalog());
        self.pool.begin_txn(id)?;
        Ok(Txn { id, snapshot })
    }

    /// Commit the transaction. With a WAL this is a durability point
    /// (returns the commit LSN); without one the write set simply
    /// stays live and 0 is returned. If the commit fails *before*
    /// becoming durable, the transaction is rolled back in place so
    /// the caller still observes all-or-nothing; if it fails after
    /// (flush error past the WAL fsync), the commit stands and the
    /// error is a plain I/O failure for recovery to repair.
    pub fn commit_txn(&mut self, txn: Txn) -> mct_storage::Result<u64> {
        if !self.pool.has_wal() {
            self.pool.end_txn()?;
            return Ok(0);
        }
        match self.sync() {
            Ok(lsn) => {
                self.maybe_checkpoint();
                Ok(lsn)
            }
            Err(e) => {
                if self.pool.txn_active() {
                    // The commit record never became durable: abort so
                    // a failed update leaves the store untouched.
                    let _ = self.pool.abort_txn();
                    if let Ok((db, phys)) = snapshot::decode(&txn.snapshot) {
                        self.install_catalog(db, phys);
                        self.generation += 1;
                    }
                }
                Err(e)
            }
        }
    }

    /// Roll the transaction back: restore every page the transaction
    /// touched (pool before-images), truncate its allocations, and
    /// reinstate the begin-time logical database + physical catalog.
    /// The generation still advances — derived state stamped mid-
    /// transaction must read as stale.
    pub fn abort_txn(&mut self, txn: Txn) -> mct_storage::Result<()> {
        let pool_res = self.pool.abort_txn();
        let (db, phys) = snapshot::decode(&txn.snapshot)?;
        self.install_catalog(db, phys);
        self.generation += 1;
        pool_res.map(|_| ())
    }

    /// Run `f` inside a transaction: commit on `Ok`, abort on `Err`,
    /// and abort on panic before resuming the unwind — so a poisoned
    /// update closure can never leave a half-applied store behind.
    pub fn with_txn<R, E, F>(&mut self, f: F) -> Result<R, E>
    where
        F: FnOnce(&mut Self) -> Result<R, E>,
        E: From<mct_storage::StorageError>,
    {
        let txn = self.begin_txn()?;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self))) {
            Ok(Ok(v)) => {
                self.commit_txn(txn)?;
                Ok(v)
            }
            Ok(Err(e)) => {
                self.abort_txn(txn)?;
                Err(e)
            }
            Err(payload) => {
                let _ = self.abort_txn(txn);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Reinstate a decoded catalog snapshot over the current pool (the
    /// abort path's logical half; the pool's pages were restored by
    /// [`BufferPool::abort_txn`]).
    fn install_catalog(&mut self, db: MctDatabase, phys: PhysCatalog) {
        self.db = db;
        self.content_heap = HeapFile::from_parts(
            phys.content_heap.0,
            phys.content_heap.1,
            phys.content_heap.2,
        );
        self.attr_heap = HeapFile::from_parts(phys.attr_heap.0, phys.attr_heap.1, phys.attr_heap.2);
        self.struct_heaps = phys
            .struct_heaps
            .into_iter()
            .map(|(p, r, b)| HeapFile::from_parts(p, r, b))
            .collect();
        self.tag_indexes = phys
            .tag_indexes
            .into_iter()
            .map(|(r, e, p)| TagIndex::from_btree(BTree::from_parts(r, e, p)))
            .collect();
        self.link_indexes = phys
            .link_indexes
            .into_iter()
            .map(|(r, e, p)| BTree::from_parts(r, e, p))
            .collect();
        self.content_index = ContentIndex::from_btree(BTree::from_parts(
            phys.content_index.0,
            phys.content_index.1,
            phys.content_index.2,
        ));
        self.attr_index = ContentIndex::from_btree(BTree::from_parts(
            phys.attr_index.0,
            phys.attr_index.1,
            phys.attr_index.2,
        ));
        self.content_rid = phys.content_rid;
        self.attr_rid = phys.attr_rid;
    }

    fn phys_catalog(&self) -> PhysCatalog {
        PhysCatalog {
            content_heap: self.content_heap.parts(),
            attr_heap: self.attr_heap.parts(),
            struct_heaps: self.struct_heaps.iter().map(HeapFile::parts).collect(),
            tag_indexes: self.tag_indexes.iter().map(|t| t.btree().parts()).collect(),
            link_indexes: self.link_indexes.iter().map(BTree::parts).collect(),
            content_index: self.content_index.btree().parts(),
            attr_index: self.attr_index.btree().parts(),
            content_rid: self.content_rid.clone(),
            attr_rid: self.attr_rid.clone(),
        }
    }

    // ----- access paths -------------------------------------------------------

    /// Posting list for `tag` in colored tree `c`, in local document
    /// order (via the tag B+-tree: page-cost-bearing).
    pub fn postings(&self, c: ColorId, tag: Sym) -> mct_storage::Result<Vec<StructRef>> {
        let posts = self.tag_indexes[c.index()].postings(&self.pool, tag.0)?;
        Ok(posts
            .into_iter()
            .map(|p| StructRef {
                node: McNodeId(p.node as u32),
                code: p.code,
            })
            .collect())
    }

    /// Posting list by tag name (resolving through the interner).
    pub fn postings_named(&self, c: ColorId, tag: &str) -> mct_storage::Result<Vec<StructRef>> {
        match self.db.names.get(tag) {
            Some(sym) => self.postings(c, sym),
            None => Ok(Vec::new()),
        }
    }

    /// Nodes whose content equals `value` exactly.
    pub fn content_lookup(&self, value: &str) -> mct_storage::Result<Vec<McNodeId>> {
        Ok(self
            .content_index
            .lookup(&self.pool, value)?
            .into_iter()
            .map(|v| McNodeId(v as u32))
            .collect())
    }

    /// Nodes with attribute `name` equal to `value`.
    pub fn attr_lookup(&self, name: &str, value: &str) -> mct_storage::Result<Vec<McNodeId>> {
        let key = format!("{name}={value}");
        Ok(self
            .attr_index
            .lookup(&self.pool, &key)?
            .into_iter()
            .map(|v| McNodeId(v as u32))
            .collect())
    }

    /// Fetch an element's content through the heap (page-cost-bearing).
    pub fn fetch_content(&self, n: McNodeId) -> mct_storage::Result<Option<String>> {
        match self.content_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                let rec = self.content_heap.get(&self.pool, rid)?;
                Ok(Some(decode_content(&rec).1))
            }
            None => Ok(None),
        }
    }

    /// Fetch an element's attributes through the heap.
    pub fn fetch_attrs(&self, n: McNodeId) -> mct_storage::Result<Vec<(String, String)>> {
        match self.attr_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                let rec = self.attr_heap.get(&self.pool, rid)?;
                Ok(decode_attrs(&rec, &self.db))
            }
            None => Ok(Vec::new()),
        }
    }

    /// The color-link probe (§6.2): interval code of `n` in tree `to`,
    /// through the per-color link index — one B+-tree descent plus one
    /// structural-record fetch per call, which is what makes a color
    /// transition cost like a value join.
    pub fn link_probe(
        &self,
        n: McNodeId,
        to: ColorId,
    ) -> mct_storage::Result<Option<IntervalCode>> {
        let Some(packed) = self.link_indexes[to.index()].get(&self.pool, &KeyEncoder::u32(n.0))?
        else {
            return Ok(None);
        };
        let rec = self.struct_heaps[to.index()].get(&self.pool, unpack_rid(packed))?;
        Ok(Some(IntervalCode::from_bytes(&rec[..10])))
    }

    /// Direct in-memory color link (the "more sophisticated
    /// implementation" the paper speculates about) — ablation A1.
    pub fn link_direct(&self, n: McNodeId, to: ColorId) -> Option<IntervalCode> {
        if !self.db.colors(n).contains(to) {
            return None;
        }
        self.db.code(n, to)
    }

    // ----- staleness detection --------------------------------------------------

    /// Current store generation. Any write-through update bumps it, so
    /// derived state stamped with an older generation is stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Explicitly advance the generation (for callers performing
    /// logical-only mutations outside the write-through methods).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Raise the generation to at least `floor`. A replica that swaps
    /// in a freshly bootstrapped store (which starts at generation 0)
    /// lifts it past the store it replaces, so generation-stamped
    /// derived state (plan caches) cannot confuse the two.
    pub fn set_generation_floor(&mut self, floor: u64) {
        if self.generation < floor {
            self.generation = floor;
        }
    }

    /// Re-annotate every dirty color and rebuild its structural
    /// indexes, restoring the "all codes clean" invariant that the
    /// shared read-only execution paths rely on. No-op when nothing is
    /// dirty.
    pub fn ensure_all_annotated(&mut self) -> mct_storage::Result<()> {
        for i in 0..self.db.palette.len() {
            let c = ColorId(i as u8);
            if self.db.is_dirty(c) {
                self.db.annotate(c);
                self.reindex_color(c)?;
            }
        }
        Ok(())
    }

    // ----- write-through updates -----------------------------------------------

    /// Insert a fresh element (already created and appended in the
    /// logical database, with codes assigned) into the physical store.
    pub fn persist_new_element(&mut self, n: McNodeId) -> mct_storage::Result<()> {
        self.generation += 1;
        if self.content_rid.len() < self.db.len() {
            self.content_rid.resize(self.db.len(), None);
            self.attr_rid.resize(self.db.len(), None);
        }
        let node = self.db.node(n).clone();
        let name = node.name.expect("element named");
        if let Some(content) = &node.content {
            let rec = encode_content(n, content);
            self.content_rid[n.index()] = Some(self.content_heap.insert(&self.pool, &rec)?);
            self.content_index
                .insert(&self.pool, content, u64::from(n.0))?;
        }
        if !node.attrs.is_empty() {
            let rec = encode_attrs(n, &node.attrs);
            self.attr_rid[n.index()] = Some(self.attr_heap.insert(&self.pool, &rec)?);
            for (s, v) in &node.attrs {
                let key = format!("{}={}", self.db.names.resolve(*s), v);
                self.attr_index.insert(&self.pool, &key, u64::from(n.0))?;
            }
        }
        for c in node.colors.iter() {
            // A renumbering insert runs `reindex_color` before persisting,
            // which already wrote this node's structural record; inserting
            // again would orphan the first record in the heap (the link
            // index only remembers the latest rid).
            if self.link_indexes[c.index()]
                .get(&self.pool, &KeyEncoder::u32(n.0))?
                .is_some()
            {
                continue;
            }
            let code = self.db.code(n, c).expect("code assigned before persist");
            let rid = self.struct_heaps[c.index()]
                .insert(&self.pool, &encode_struct(n, name, code))?;
            self.tag_indexes[c.index()].insert(&self.pool, name.0, code, u64::from(n.0))?;
            self.link_indexes[c.index()].insert(&self.pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
        }
        Ok(())
    }

    /// Replace an element's content, updating heap and content index.
    pub fn update_content(&mut self, n: McNodeId, new: &str) -> mct_storage::Result<()> {
        self.generation += 1;
        let old = self.db.content(n).map(str::to_string);
        self.db.set_content(n, new);
        if let Some(old) = &old {
            self.content_index.remove(&self.pool, old, u64::from(n.0))?;
        }
        let rec = encode_content(n, new);
        match self.content_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                // The record may relocate when it grows past its page.
                let new_rid = self.content_heap.update(&self.pool, rid, &rec)?;
                self.content_rid[n.index()] = Some(new_rid);
            }
            None => {
                if self.content_rid.len() < self.db.len() {
                    self.content_rid.resize(self.db.len(), None);
                }
                self.content_rid[n.index()] =
                    Some(self.content_heap.insert(&self.pool, &rec)?);
            }
        }
        self.content_index.insert(&self.pool, new, u64::from(n.0))?;
        Ok(())
    }

    /// Remove node `n` from colored tree `to` (physical side of a
    /// color-scoped delete): drops its structural index entries. The
    /// logical detach/`remove_color` is the caller's responsibility.
    pub fn unindex_node(&mut self, n: McNodeId, c: ColorId) -> mct_storage::Result<()> {
        self.generation += 1;
        let name = self.db.node(n).name.expect("element named");
        if let Some(code) = self.db.code(n, c) {
            self.tag_indexes[c.index()].remove(&self.pool, name.0, code)?;
            if let Some(packed) =
                self.link_indexes[c.index()].get(&self.pool, &KeyEncoder::u32(n.0))?
            {
                self.struct_heaps[c.index()].delete(&self.pool, unpack_rid(packed))?;
            }
            self.link_indexes[c.index()].delete(&self.pool, &KeyEncoder::u32(n.0))?;
        }
        Ok(())
    }

    /// Rebuild the structural indexes of one color after a renumbering
    /// (`annotate`) invalidated its codes.
    pub fn reindex_color(&mut self, c: ColorId) -> mct_storage::Result<()> {
        self.generation += 1;
        self.db.ensure_annotated(c);
        let mut tag = TagIndex::create(&self.pool)?;
        let mut link = BTree::create(&self.pool)?;
        let mut heap = HeapFile::new();
        let nodes: Vec<(McNodeId, Sym)> = self
            .db
            .descendants_or_self(McNodeId::DOCUMENT, c)
            .skip(1)
            .map(|n| (n, self.db.node(n).name.expect("element named")))
            .collect();
        for (n, name) in nodes {
            let code = self.db.code(n, c).expect("annotated");
            let rid = heap.insert(&self.pool, &encode_struct(n, name, code))?;
            tag.insert(&self.pool, name.0, code, u64::from(n.0))?;
            link.insert(&self.pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
        }
        self.tag_indexes[c.index()] = tag;
        self.link_indexes[c.index()] = link;
        self.struct_heaps[c.index()] = heap;
        Ok(())
    }

    // ----- statistics (Table 1) -------------------------------------------------

    /// Storage statistics in the shape of the paper's Table 1.
    pub fn stats(&self) -> StorageStats {
        let (num_elements, num_attrs, num_content) = self.db.counts();
        let data_pages = self.content_heap.page_count()
            + self.attr_heap.page_count()
            + self
                .struct_heaps
                .iter()
                .map(HeapFile::page_count)
                .sum::<usize>();
        let index_pages: u64 = self
            .tag_indexes
            .iter()
            .map(|t| u64::from(t.page_count()))
            .chain(self.link_indexes.iter().map(|t| u64::from(t.page_count())))
            .sum::<u64>()
            + u64::from(self.content_index.page_count())
            + u64::from(self.attr_index.page_count());
        StorageStats {
            num_elements,
            num_attrs,
            num_content,
            num_structural: self.db.structural_count(),
            data_bytes: data_pages as u64 * PAGE_SIZE as u64,
            index_bytes: index_pages * PAGE_SIZE as u64,
        }
    }

    /// Cold-cache mode: drop every cached page (§7: "flushing all
    /// buffers completely before each query evaluation").
    pub fn flush_cache(&self) -> mct_storage::Result<()> {
        self.pool.evict_all()
    }
}

fn encode_content(n: McNodeId, content: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + content.len());
    out.extend_from_slice(&n.0.to_le_bytes());
    out.extend_from_slice(content.as_bytes());
    out
}

pub(crate) fn decode_content(rec: &[u8]) -> (McNodeId, String) {
    let n = McNodeId(u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]));
    (n, String::from_utf8_lossy(&rec[4..]).into_owned())
}

fn encode_attrs(n: McNodeId, attrs: &[(Sym, Box<str>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + attrs.len() * 12);
    out.extend_from_slice(&n.0.to_le_bytes());
    out.extend_from_slice(&(attrs.len() as u16).to_le_bytes());
    for (s, v) in attrs {
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&(v.len() as u16).to_le_bytes());
        out.extend_from_slice(v.as_bytes());
    }
    out
}

pub(crate) fn decode_attrs(rec: &[u8], db: &MctDatabase) -> Vec<(String, String)> {
    let count = u16::from_le_bytes([rec[4], rec[5]]) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 6;
    for _ in 0..count {
        let sym = Sym(u32::from_le_bytes([
            rec[at],
            rec[at + 1],
            rec[at + 2],
            rec[at + 3],
        ]));
        let len = u16::from_le_bytes([rec[at + 4], rec[at + 5]]) as usize;
        at += 6;
        let v = String::from_utf8_lossy(&rec[at..at + len]).into_owned();
        at += len;
        out.push((db.names.resolve(sym).to_string(), v));
    }
    out
}

pub(crate) fn encode_struct(n: McNodeId, name: Sym, code: IntervalCode) -> Vec<u8> {
    let mut out = Vec::with_capacity(18);
    out.extend_from_slice(&code.to_bytes());
    out.extend_from_slice(&name.0.to_le_bytes());
    out.extend_from_slice(&n.0.to_le_bytes());
    out
}

fn pack_rid(rid: RecordId) -> u64 {
    (u64::from(rid.page.0) << 16) | u64::from(rid.slot)
}

pub(crate) fn unpack_rid(v: u64) -> RecordId {
    RecordId {
        page: mct_storage::PageId((v >> 16) as u32),
        slot: (v & 0xFFFF) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::MctDatabase;

    fn small_db() -> MctDatabase {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let genre = db.new_element("movie-genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let award = db.new_element("movie-award", green);
        db.set_content(award, "Oscar");
        db.append_child(McNodeId::DOCUMENT, award, green);
        for i in 0..10 {
            let m = db.new_element("movie", red);
            db.set_attr(m, "id", &format!("m{i}"));
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            if i % 2 == 0 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
            }
        }
        db
    }

    #[test]
    fn build_and_postings() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let red_movies = s.postings_named(red, "movie").unwrap();
        let green_movies = s.postings_named(green, "movie").unwrap();
        assert_eq!(red_movies.len(), 10);
        assert_eq!(green_movies.len(), 5);
        // Posting lists are sorted by start (document order).
        assert!(red_movies.windows(2).all(|w| w[0].code.start < w[1].code.start));
        // Unknown tag -> empty.
        assert!(s.postings_named(red, "nope").unwrap().is_empty());
    }

    #[test]
    fn content_and_attr_lookup() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(s.db.name_str(hits[0]), Some("name"));
        let byattr = s.attr_lookup("id", "m7").unwrap();
        assert_eq!(byattr.len(), 1);
        assert_eq!(s.db.name_str(byattr[0]), Some("movie"));
        assert!(s.content_lookup("Movie 99").unwrap().is_empty());
    }

    #[test]
    fn fetch_content_via_heap() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        assert_eq!(s.fetch_content(hits[0]).unwrap().as_deref(), Some("Movie 3"));
        let red = s.db.color("red").unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(s.fetch_content(movies[0].node).unwrap(), None);
        let attrs = s.fetch_attrs(movies[0].node).unwrap();
        assert_eq!(attrs, vec![("id".to_string(), "m0".to_string())]);
    }

    #[test]
    fn link_probe_matches_direct() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let red_movies = s.postings_named(red, "movie").unwrap();
        for r in &red_movies {
            let via_probe = s.link_probe(r.node, green).unwrap();
            let via_direct = s.link_direct(r.node, green);
            match (via_probe, via_direct) {
                (Some(p), Some(d)) => {
                    assert_eq!(p.start, d.start);
                    assert_eq!(p.end, d.end);
                }
                (None, None) => {}
                other => panic!("probe/direct disagree: {other:?}"),
            }
        }
        // Exactly the even movies are green.
        let crossings = red_movies
            .iter()
            .filter(|r| s.link_direct(r.node, green).is_some())
            .count();
        assert_eq!(crossings, 5);
    }

    #[test]
    fn stats_count_structural_replication() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let st = s.stats();
        // 2 hierarchy roots + 10 movies + 10 names = 22 elements.
        assert_eq!(st.num_elements, 22);
        // movies with 2 colors: 5 extra structural records.
        assert_eq!(st.num_structural, 27);
        assert_eq!(st.num_attrs, 10);
        assert_eq!(st.num_content, 12);
        assert!(st.data_bytes > 0);
        assert!(st.index_bytes > 0);
    }

    #[test]
    fn update_content_is_visible_everywhere() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        let n = hits[0];
        s.update_content(n, "Renamed").unwrap();
        assert!(s.content_lookup("Movie 3").unwrap().is_empty());
        assert_eq!(s.content_lookup("Renamed").unwrap(), vec![n]);
        assert_eq!(s.fetch_content(n).unwrap().as_deref(), Some("Renamed"));
        assert_eq!(s.db.content(n), Some("Renamed"));
    }

    #[test]
    fn insert_element_write_through() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let genre = s.postings_named(red, "movie-genre").unwrap()[0].node;
        let m = s.db.new_element("movie", red);
        s.db.set_content(m, "Fresh Movie");
        s.db.append_child(genre, m, red);
        if !s.db.try_assign_gap_codes(m, red) {
            s.db.annotate(red);
            s.reindex_color(red).unwrap();
        }
        s.persist_new_element(m).unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(movies.len(), 11);
        assert_eq!(s.content_lookup("Fresh Movie").unwrap(), vec![m]);
    }

    #[test]
    fn unindex_node_removes_from_postings() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let green = s.db.color("green").unwrap();
        let gm = s.postings_named(green, "movie").unwrap();
        let victim = gm[0].node;
        s.unindex_node(victim, green).unwrap();
        s.db.remove_color(victim, green);
        let after = s.postings_named(green, "movie").unwrap();
        assert_eq!(after.len(), gm.len() - 1);
        assert!(after.iter().all(|r| r.node != victim));
        // Red side unaffected.
        let red = s.db.color("red").unwrap();
        assert_eq!(s.postings_named(red, "movie").unwrap().len(), 10);
    }

    #[test]
    fn reindex_color_after_renumber() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        s.db.annotate(red); // force renumber
        s.reindex_color(red).unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(movies.len(), 10);
        for r in &movies {
            assert_eq!(s.db.code(r.node, red).unwrap().start, r.code.start);
        }
    }

    fn walled_pool(pool_bytes: usize) -> BufferPool<MemDisk> {
        let mut pool = BufferPool::new(MemDisk::new(), pool_bytes);
        pool.attach_wal(Wal::create(Box::new(MemDisk::new())).unwrap());
        pool
    }

    /// Everything a query can observe, as one comparable value.
    fn fingerprint<D: DiskManager>(s: &mut StoredDb<D>) -> Vec<String> {
        let mut out = Vec::new();
        for (c, name) in s.db.palette.iter().map(|(c, n)| (c, n.to_string())).collect::<Vec<_>>() {
            for tag in ["movie-genre", "movie-award", "movie", "name"] {
                for r in s.postings_named(c, tag).unwrap() {
                    out.push(format!(
                        "{name}/{tag}: n{} [{},{}]@{}",
                        r.node.0, r.code.start, r.code.end, r.code.level
                    ));
                    out.push(format!("content: {:?}", s.fetch_content(r.node).unwrap()));
                    out.push(format!("attrs: {:?}", s.fetch_attrs(r.node).unwrap()));
                }
            }
        }
        out
    }

    #[test]
    fn sync_open_roundtrip_in_memory() {
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        let before = fingerprint(&mut s);
        s.sync().unwrap();
        let (data, wal) = s.pool.into_parts();
        let mut r = StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
            .unwrap()
            .expect("committed state recovered");
        assert_eq!(fingerprint(&mut r), before);
        // Recovered database still answers value lookups and probes.
        let green = r.db.color("green").unwrap();
        let hits = r.content_lookup("Movie 3").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(r.attr_lookup("id", "m2").unwrap().len(), 1);
        let red_movies = {
            let red = r.db.color("red").unwrap();
            r.postings_named(red, "movie").unwrap()
        };
        let crossings = red_movies
            .iter()
            .filter(|m| r.link_probe(m.node, green).unwrap().is_some())
            .count();
        assert_eq!(crossings, 5);
    }

    #[test]
    fn snapshot_ship_and_rebuild_matches_source() {
        // The replication bootstrap path in miniature: raw pages +
        // catalog blob shipped to a fresh MemDisk rebuild the exact
        // same observable store.
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        s.sync().unwrap();
        let before = fingerprint(&mut s);
        let catalog = s.snapshot_catalog();
        let mut shipped = MemDisk::new();
        for p in 0..s.pool.num_pages() {
            let mut buf = [0u8; PAGE_SIZE];
            s.pool
                .read_page_raw(mct_storage::PageId(p), &mut buf)
                .unwrap();
            shipped.allocate().unwrap();
            shipped.write(mct_storage::PageId(p), &buf).unwrap();
        }
        let mut r = StoredDb::from_snapshot(shipped, &catalog, 4 * 1024 * 1024).unwrap();
        assert_eq!(fingerprint(&mut r), before);
        assert!(!r.pool.has_wal(), "replicas have no log of their own");

        // Replicated-commit apply: mutate the source, commit, ship the
        // images + commit the way the stream would.
        let n = s.content_lookup("Movie 3").unwrap()[0];
        s.update_content(n, "Shipped Edit").unwrap();
        s.sync().unwrap();
        let after = fingerprint(&mut s);
        let mut cursor = mct_storage::TailCursor::new();
        let (records, remaining) = s
            .pool
            .with_wal(|wal| wal.read_committed_after(&mut cursor, 0, u64::MAX))
            .unwrap();
        assert_eq!(remaining, 0);
        for rec in records {
            match rec {
                mct_storage::ReplRecord::Image { page, image, .. } => {
                    r.apply_repl_image(page, &image).unwrap();
                }
                mct_storage::ReplRecord::Commit {
                    num_pages, catalog, ..
                } => {
                    r.apply_repl_commit(num_pages, &catalog).unwrap();
                }
            }
        }
        assert_eq!(fingerprint(&mut r), after);
        assert_eq!(r.content_lookup("Shipped Edit").unwrap(), vec![n]);
        assert!(r.generation() > 0, "replicated commit bumps the generation");
    }

    #[test]
    fn open_before_first_sync_is_none() {
        let s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        // No sync() — nothing is durable yet.
        let (data, wal) = s.pool.into_parts();
        assert!(
            StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn changes_after_sync_roll_back_on_reopen() {
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        s.sync().unwrap();
        let before = fingerprint(&mut s);
        let hits = s.content_lookup("Movie 3").unwrap();
        s.update_content(hits[0], "Unsynced Edit").unwrap();
        s.pool.flush_all().unwrap(); // even flushed-but-uncommitted pages roll back
        let (data, wal) = s.pool.into_parts();
        let mut r = StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
            .unwrap()
            .unwrap();
        assert_eq!(fingerprint(&mut r), before);
        assert!(r.content_lookup("Unsynced Edit").unwrap().is_empty());
        assert_eq!(r.content_lookup("Movie 3").unwrap().len(), 1);
    }

    #[test]
    fn sync_without_wal_errors() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        assert!(s.sync().is_err(), "MemDisk pool without WAL cannot sync");
    }

    #[test]
    fn create_sync_open_on_files() {
        let dir = std::env::temp_dir().join(format!("mct-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let before = {
            let mut s = StoredDb::create(&dir, small_db(), 4 * 1024 * 1024).unwrap();
            s.sync().unwrap();
            fingerprint(&mut s)
        };
        let mut r = StoredDb::open(&dir, 4 * 1024 * 1024)
            .unwrap()
            .expect("durable database reopened");
        assert_eq!(fingerprint(&mut r), before);
        // A second sync after an update survives another reopen.
        let n = r.content_lookup("Movie 1").unwrap()[0];
        r.update_content(n, "Second Life").unwrap();
        r.sync().unwrap();
        drop(r);
        let r2 = StoredDb::open(&dir, 4 * 1024 * 1024).unwrap().unwrap();
        assert_eq!(r2.content_lookup("Second Life").unwrap(), vec![n]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_bumps_on_every_write_path() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        assert_eq!(s.generation(), 0, "fresh build starts at 0");
        let n = s.content_lookup("Movie 3").unwrap()[0];
        s.update_content(n, "Renamed").unwrap();
        let g1 = s.generation();
        assert!(g1 > 0, "update_content bumps");
        // Reads leave the generation untouched.
        let red = s.db.color("red").unwrap();
        s.postings_named(red, "movie").unwrap();
        s.fetch_content(n).unwrap();
        assert_eq!(s.generation(), g1);
        let green = s.db.color("green").unwrap();
        let victim = s.postings_named(green, "movie").unwrap()[0].node;
        s.unindex_node(victim, green).unwrap();
        s.db.remove_color(victim, green);
        assert!(s.generation() > g1, "unindex_node bumps");
        let g2 = s.generation();
        s.reindex_color(green).unwrap();
        assert!(s.generation() > g2, "reindex_color bumps");
        let g3 = s.generation();
        s.bump_generation();
        assert_eq!(s.generation(), g3 + 1);
    }

    #[test]
    fn ensure_all_annotated_clears_dirty_colors() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let genre = s.postings_named(red, "movie-genre").unwrap()[0].node;
        let m = s.db.new_element("movie", red);
        s.db.append_child(genre, m, red);
        assert!(s.db.is_dirty(red), "structural append dirties the color");
        s.ensure_all_annotated().unwrap();
        assert!(!s.db.is_dirty(red));
        // The fresh element is now indexed with a valid code.
        assert_eq!(s.postings_named(red, "movie").unwrap().len(), 11);
    }

    /// A multi-structure mutation batch used by the txn tests: content
    /// rewrite + fresh element + color-scoped delete.
    fn mutate_everything<D: DiskManager>(s: &mut StoredDb<D>) -> mct_storage::Result<()> {
        let n = s.content_lookup("Movie 3")?[0];
        s.update_content(n, "Txn Edit")?;
        let red = s.db.color("red").unwrap();
        let genre = s.postings_named(red, "movie-genre")?[0].node;
        let m = s.db.new_element("movie", red);
        s.db.set_content(m, "Txn Movie");
        s.db.append_child(genre, m, red);
        if !s.db.try_assign_gap_codes(m, red) {
            s.db.annotate(red);
            s.reindex_color(red)?;
        }
        s.persist_new_element(m)?;
        let green = s.db.color("green").unwrap();
        let victim = s.postings_named(green, "movie")?[0].node;
        s.unindex_node(victim, green)?;
        s.db.remove_color(victim, green);
        Ok(())
    }

    #[test]
    fn txn_abort_restores_fingerprint_without_wal() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let before = fingerprint(&mut s);
        let txn = s.begin_txn().unwrap();
        mutate_everything(&mut s).unwrap();
        assert_ne!(fingerprint(&mut s), before, "mutations visible inside the txn");
        s.abort_txn(txn).unwrap();
        assert_eq!(fingerprint(&mut s), before, "abort restores everything");
        assert!(s.content_lookup("Txn Edit").unwrap().is_empty());
        assert_eq!(s.content_lookup("Movie 3").unwrap().len(), 1);
    }

    #[test]
    fn txn_abort_restores_fingerprint_with_wal() {
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        s.sync().unwrap();
        let before = fingerprint(&mut s);
        let txn = s.begin_txn().unwrap();
        mutate_everything(&mut s).unwrap();
        s.abort_txn(txn).unwrap();
        assert_eq!(fingerprint(&mut s), before);
        // The aborted state is also what a reopen recovers.
        let (data, wal) = s.pool.into_parts();
        let mut r = StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
            .unwrap()
            .unwrap();
        assert_eq!(fingerprint(&mut r), before);
    }

    #[test]
    fn txn_commit_makes_the_batch_durable() {
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        s.sync().unwrap();
        let txn = s.begin_txn().unwrap();
        mutate_everything(&mut s).unwrap();
        s.commit_txn(txn).unwrap();
        let after = fingerprint(&mut s);
        let (data, wal) = s.pool.into_parts();
        let mut r = StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
            .unwrap()
            .unwrap();
        assert_eq!(fingerprint(&mut r), after);
        assert_eq!(r.content_lookup("Txn Edit").unwrap().len(), 1);
    }

    #[test]
    fn crash_mid_txn_recovers_to_pre_txn_state() {
        let mut s = StoredDb::build_on(walled_pool(4 * 1024 * 1024), small_db()).unwrap();
        s.sync().unwrap();
        let before = fingerprint(&mut s);
        let txn = s.begin_txn().unwrap();
        mutate_everything(&mut s).unwrap();
        // Crash: neither commit nor abort; even force the loser's
        // pages onto the data file first.
        s.pool.flush_all().unwrap();
        drop(txn);
        let (data, wal) = s.pool.into_parts();
        let mut r = StoredDb::open_with(data, wal.unwrap().into_disk(), 4 * 1024 * 1024)
            .unwrap()
            .unwrap();
        assert_eq!(fingerprint(&mut r), before, "loser txn fully undone");
    }

    #[test]
    fn with_txn_commits_on_ok_and_aborts_on_err() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let before = fingerprint(&mut s);
        let r: Result<(), mct_storage::StorageError> = s.with_txn(|s| {
            mutate_everything(s)?;
            Err(mct_storage::StorageError::Cancelled)
        });
        assert!(matches!(r, Err(mct_storage::StorageError::Cancelled)));
        assert_eq!(fingerprint(&mut s), before, "Err path aborts");

        let r: Result<(), mct_storage::StorageError> = s.with_txn(mutate_everything);
        assert!(r.is_ok());
        assert_ne!(fingerprint(&mut s), before, "Ok path commits");
    }

    #[test]
    fn with_txn_aborts_on_panic_and_stays_usable() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let before = fingerprint(&mut s);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), mct_storage::StorageError> = s.with_txn(|s| {
                mutate_everything(s)?;
                panic!("poisoned update closure");
            });
        }));
        assert!(unwound.is_err(), "the panic must propagate");
        assert_eq!(fingerprint(&mut s), before, "panic path aborts");
        assert!(!s.pool.txn_active(), "no transaction left dangling");
        // The database remains fully serviceable: a later txn works.
        let r: Result<(), mct_storage::StorageError> = s.with_txn(mutate_everything);
        assert!(r.is_ok());
        assert_eq!(s.content_lookup("Txn Edit").unwrap().len(), 1);
    }

    #[test]
    fn cold_cache_flush() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        s.postings_named(red, "movie").unwrap();
        s.flush_cache().unwrap();
        let mark = s.pool.stats();
        s.postings_named(red, "movie").unwrap();
        assert!(
            s.pool.stats().delta_since(&mark).misses > 0,
            "cold read after flush"
        );
    }
}
