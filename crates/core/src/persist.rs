//! The physical MCT database (§6.2, Figure 10).
//!
//! [`StoredDb`] maps a logical [`MctDatabase`] onto the storage engine
//! exactly the way the paper modified Timber:
//!
//! * one **content record** per element with content, in a heap file;
//! * one **attribute record** per element with attributes;
//! * one **structural record per (element, color)** — the interval
//!   code + tag + node id — in a per-color heap file;
//! * per-color **tag indexes** over the structural records (posting
//!   lists in local document order — the inputs to structural joins);
//! * a **content index** and an **attribute index** (value → node) for
//!   selection predicates and ID/IDREF value joins;
//! * per-color **link indexes** (node → interval code): these are the
//!   paper's "additional attributes providing links back to each of the
//!   corresponding single-colored structural nodes", and the access
//!   path used by the cross-tree join.
//!
//! All query-time access goes through the shared buffer pool, so page
//! hits/misses and the warm/cold cache distinction behave as in §7.

use crate::color::ColorId;
use crate::database::{McNodeId, McNodeKind, MctDatabase};
use mct_storage::{
    BTree, BufferPool, ContentIndex, HeapFile, IntervalCode, KeyEncoder, MemDisk, RecordId,
    StorageStats, TagIndex, PAGE_SIZE,
};
use mct_xml::Sym;

/// One entry of a posting list: a structural node reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StructRef {
    /// Logical node.
    pub node: McNodeId,
    /// Interval code in the posting's colored tree.
    pub code: IntervalCode,
}

/// A stored (physical) MCT database.
pub struct StoredDb {
    /// The logical database (kept for construction & exact navigation).
    pub db: MctDatabase,
    /// Shared buffer pool over the in-memory disk.
    pub pool: BufferPool<MemDisk>,
    content_heap: HeapFile,
    attr_heap: HeapFile,
    struct_heaps: Vec<HeapFile>,
    tag_indexes: Vec<TagIndex>,
    link_indexes: Vec<BTree>,
    content_index: ContentIndex,
    attr_index: ContentIndex,
    content_rid: Vec<Option<RecordId>>,
    attr_rid: Vec<Option<RecordId>>,
}

impl StoredDb {
    /// Persist a logical database. Annotates every color, then bulk
    /// loads heaps and indexes. `pool_bytes` bounds the buffer pool
    /// (the paper used 256 MiB).
    pub fn build(mut db: MctDatabase, pool_bytes: usize) -> mct_storage::Result<StoredDb> {
        let mut pool = BufferPool::new(MemDisk::new(), pool_bytes);
        let ncolors = db.palette.len();
        for i in 0..ncolors {
            db.ensure_annotated(ColorId(i as u8));
        }
        let mut content_heap = HeapFile::new();
        let mut attr_heap = HeapFile::new();
        let mut struct_heaps: Vec<HeapFile> = (0..ncolors).map(|_| HeapFile::new()).collect();
        let mut tag_indexes = Vec::with_capacity(ncolors);
        let mut link_indexes = Vec::with_capacity(ncolors);
        for _ in 0..ncolors {
            tag_indexes.push(TagIndex::create(&mut pool)?);
            link_indexes.push(BTree::create(&mut pool)?);
        }
        let mut content_index = ContentIndex::create(&mut pool)?;
        let mut attr_index = ContentIndex::create(&mut pool)?;
        let mut content_rid = vec![None; db.len()];
        let mut attr_rid = vec![None; db.len()];

        for i in 0..db.len() {
            let n = McNodeId(i as u32);
            let node = db.node(n);
            if node.kind != McNodeKind::Element || node.colors.is_empty() {
                continue;
            }
            let name = node.name.expect("element named");
            // Content record + index.
            if let Some(content) = node.content.clone() {
                let rec = encode_content(n, &content);
                content_rid[i] = Some(content_heap.insert(&mut pool, &rec)?);
                content_index.insert(&mut pool, &content, u64::from(n.0))?;
            }
            // Attribute record + index.
            if !node.attrs.is_empty() {
                let pairs: Vec<(Sym, Box<str>)> = node.attrs.clone();
                let rec = encode_attrs(n, &pairs);
                attr_rid[i] = Some(attr_heap.insert(&mut pool, &rec)?);
                for (s, v) in &pairs {
                    let key = format!("{}={}", db.names.resolve(*s), v);
                    attr_index.insert(&mut pool, &key, u64::from(n.0))?;
                }
            }
            // One structural record per color; the link index points at
            // the structural record (Figure 10's back-links).
            for c in node.colors.iter() {
                let code = db.code(n, c).expect("annotated");
                let rid =
                    struct_heaps[c.index()].insert(&mut pool, &encode_struct(n, name, code))?;
                tag_indexes[c.index()].insert(&mut pool, name.0, code, u64::from(n.0))?;
                link_indexes[c.index()].insert(&mut pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
            }
        }
        Ok(StoredDb {
            db,
            pool,
            content_heap,
            attr_heap,
            struct_heaps,
            tag_indexes,
            link_indexes,
            content_index,
            attr_index,
            content_rid,
            attr_rid,
        })
    }

    // ----- access paths -------------------------------------------------------

    /// Posting list for `tag` in colored tree `c`, in local document
    /// order (via the tag B+-tree: page-cost-bearing).
    pub fn postings(&mut self, c: ColorId, tag: Sym) -> mct_storage::Result<Vec<StructRef>> {
        let posts = self.tag_indexes[c.index()].postings(&mut self.pool, tag.0)?;
        Ok(posts
            .into_iter()
            .map(|p| StructRef {
                node: McNodeId(p.node as u32),
                code: p.code,
            })
            .collect())
    }

    /// Posting list by tag name (resolving through the interner).
    pub fn postings_named(&mut self, c: ColorId, tag: &str) -> mct_storage::Result<Vec<StructRef>> {
        match self.db.names.get(tag) {
            Some(sym) => self.postings(c, sym),
            None => Ok(Vec::new()),
        }
    }

    /// Nodes whose content equals `value` exactly.
    pub fn content_lookup(&mut self, value: &str) -> mct_storage::Result<Vec<McNodeId>> {
        Ok(self
            .content_index
            .lookup(&mut self.pool, value)?
            .into_iter()
            .map(|v| McNodeId(v as u32))
            .collect())
    }

    /// Nodes with attribute `name` equal to `value`.
    pub fn attr_lookup(&mut self, name: &str, value: &str) -> mct_storage::Result<Vec<McNodeId>> {
        let key = format!("{name}={value}");
        Ok(self
            .attr_index
            .lookup(&mut self.pool, &key)?
            .into_iter()
            .map(|v| McNodeId(v as u32))
            .collect())
    }

    /// Fetch an element's content through the heap (page-cost-bearing).
    pub fn fetch_content(&mut self, n: McNodeId) -> mct_storage::Result<Option<String>> {
        match self.content_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                let rec = self.content_heap.get(&mut self.pool, rid)?;
                Ok(Some(decode_content(&rec).1))
            }
            None => Ok(None),
        }
    }

    /// Fetch an element's attributes through the heap.
    pub fn fetch_attrs(&mut self, n: McNodeId) -> mct_storage::Result<Vec<(String, String)>> {
        match self.attr_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                let rec = self.attr_heap.get(&mut self.pool, rid)?;
                Ok(decode_attrs(&rec, &self.db))
            }
            None => Ok(Vec::new()),
        }
    }

    /// The color-link probe (§6.2): interval code of `n` in tree `to`,
    /// through the per-color link index — one B+-tree descent plus one
    /// structural-record fetch per call, which is what makes a color
    /// transition cost like a value join.
    pub fn link_probe(
        &mut self,
        n: McNodeId,
        to: ColorId,
    ) -> mct_storage::Result<Option<IntervalCode>> {
        let Some(packed) = self.link_indexes[to.index()].get(&mut self.pool, &KeyEncoder::u32(n.0))?
        else {
            return Ok(None);
        };
        let rec = self.struct_heaps[to.index()].get(&mut self.pool, unpack_rid(packed))?;
        Ok(Some(IntervalCode::from_bytes(&rec[..10])))
    }

    /// Direct in-memory color link (the "more sophisticated
    /// implementation" the paper speculates about) — ablation A1.
    pub fn link_direct(&self, n: McNodeId, to: ColorId) -> Option<IntervalCode> {
        if !self.db.colors(n).contains(to) {
            return None;
        }
        self.db.code(n, to)
    }

    // ----- write-through updates -----------------------------------------------

    /// Insert a fresh element (already created and appended in the
    /// logical database, with codes assigned) into the physical store.
    pub fn persist_new_element(&mut self, n: McNodeId) -> mct_storage::Result<()> {
        if self.content_rid.len() < self.db.len() {
            self.content_rid.resize(self.db.len(), None);
            self.attr_rid.resize(self.db.len(), None);
        }
        let node = self.db.node(n).clone();
        let name = node.name.expect("element named");
        if let Some(content) = &node.content {
            let rec = encode_content(n, content);
            self.content_rid[n.index()] = Some(self.content_heap.insert(&mut self.pool, &rec)?);
            self.content_index
                .insert(&mut self.pool, content, u64::from(n.0))?;
        }
        if !node.attrs.is_empty() {
            let rec = encode_attrs(n, &node.attrs);
            self.attr_rid[n.index()] = Some(self.attr_heap.insert(&mut self.pool, &rec)?);
            for (s, v) in &node.attrs {
                let key = format!("{}={}", self.db.names.resolve(*s), v);
                self.attr_index.insert(&mut self.pool, &key, u64::from(n.0))?;
            }
        }
        for c in node.colors.iter() {
            let code = self.db.code(n, c).expect("code assigned before persist");
            let rid = self.struct_heaps[c.index()]
                .insert(&mut self.pool, &encode_struct(n, name, code))?;
            self.tag_indexes[c.index()].insert(&mut self.pool, name.0, code, u64::from(n.0))?;
            self.link_indexes[c.index()].insert(&mut self.pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
        }
        Ok(())
    }

    /// Replace an element's content, updating heap and content index.
    pub fn update_content(&mut self, n: McNodeId, new: &str) -> mct_storage::Result<()> {
        let old = self.db.content(n).map(str::to_string);
        self.db.set_content(n, new);
        if let Some(old) = &old {
            self.content_index.remove(&mut self.pool, old, u64::from(n.0))?;
        }
        let rec = encode_content(n, new);
        match self.content_rid.get(n.index()).copied().flatten() {
            Some(rid) => {
                // The record may relocate when it grows past its page.
                let new_rid = self.content_heap.update(&mut self.pool, rid, &rec)?;
                self.content_rid[n.index()] = Some(new_rid);
            }
            None => {
                if self.content_rid.len() < self.db.len() {
                    self.content_rid.resize(self.db.len(), None);
                }
                self.content_rid[n.index()] =
                    Some(self.content_heap.insert(&mut self.pool, &rec)?);
            }
        }
        self.content_index.insert(&mut self.pool, new, u64::from(n.0))?;
        Ok(())
    }

    /// Remove node `n` from colored tree `to` (physical side of a
    /// color-scoped delete): drops its structural index entries. The
    /// logical detach/`remove_color` is the caller's responsibility.
    pub fn unindex_node(&mut self, n: McNodeId, c: ColorId) -> mct_storage::Result<()> {
        let name = self.db.node(n).name.expect("element named");
        if let Some(code) = self.db.code(n, c) {
            self.tag_indexes[c.index()].remove(&mut self.pool, name.0, code)?;
            if let Some(packed) =
                self.link_indexes[c.index()].get(&mut self.pool, &KeyEncoder::u32(n.0))?
            {
                self.struct_heaps[c.index()].delete(&mut self.pool, unpack_rid(packed))?;
            }
            self.link_indexes[c.index()].delete(&mut self.pool, &KeyEncoder::u32(n.0))?;
        }
        Ok(())
    }

    /// Rebuild the structural indexes of one color after a renumbering
    /// (`annotate`) invalidated its codes.
    pub fn reindex_color(&mut self, c: ColorId) -> mct_storage::Result<()> {
        self.db.ensure_annotated(c);
        let mut tag = TagIndex::create(&mut self.pool)?;
        let mut link = BTree::create(&mut self.pool)?;
        let mut heap = HeapFile::new();
        let nodes: Vec<(McNodeId, Sym)> = self
            .db
            .descendants_or_self(McNodeId::DOCUMENT, c)
            .skip(1)
            .map(|n| (n, self.db.node(n).name.expect("element named")))
            .collect();
        for (n, name) in nodes {
            let code = self.db.code(n, c).expect("annotated");
            let rid = heap.insert(&mut self.pool, &encode_struct(n, name, code))?;
            tag.insert(&mut self.pool, name.0, code, u64::from(n.0))?;
            link.insert(&mut self.pool, &KeyEncoder::u32(n.0), pack_rid(rid))?;
        }
        self.tag_indexes[c.index()] = tag;
        self.link_indexes[c.index()] = link;
        self.struct_heaps[c.index()] = heap;
        Ok(())
    }

    // ----- statistics (Table 1) -------------------------------------------------

    /// Storage statistics in the shape of the paper's Table 1.
    pub fn stats(&self) -> StorageStats {
        let (num_elements, num_attrs, num_content) = self.db.counts();
        let data_pages = self.content_heap.page_count()
            + self.attr_heap.page_count()
            + self
                .struct_heaps
                .iter()
                .map(HeapFile::page_count)
                .sum::<usize>();
        let index_pages: u64 = self
            .tag_indexes
            .iter()
            .map(|t| u64::from(t.page_count()))
            .chain(self.link_indexes.iter().map(|t| u64::from(t.page_count())))
            .sum::<u64>()
            + u64::from(self.content_index.page_count())
            + u64::from(self.attr_index.page_count());
        StorageStats {
            num_elements,
            num_attrs,
            num_content,
            num_structural: self.db.structural_count(),
            data_bytes: data_pages as u64 * PAGE_SIZE as u64,
            index_bytes: index_pages * PAGE_SIZE as u64,
        }
    }

    /// Cold-cache mode: drop every cached page (§7: "flushing all
    /// buffers completely before each query evaluation").
    pub fn flush_cache(&mut self) -> mct_storage::Result<()> {
        self.pool.evict_all()
    }
}

fn encode_content(n: McNodeId, content: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + content.len());
    out.extend_from_slice(&n.0.to_le_bytes());
    out.extend_from_slice(content.as_bytes());
    out
}

fn decode_content(rec: &[u8]) -> (McNodeId, String) {
    let n = McNodeId(u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]));
    (n, String::from_utf8_lossy(&rec[4..]).into_owned())
}

fn encode_attrs(n: McNodeId, attrs: &[(Sym, Box<str>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + attrs.len() * 12);
    out.extend_from_slice(&n.0.to_le_bytes());
    out.extend_from_slice(&(attrs.len() as u16).to_le_bytes());
    for (s, v) in attrs {
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&(v.len() as u16).to_le_bytes());
        out.extend_from_slice(v.as_bytes());
    }
    out
}

fn decode_attrs(rec: &[u8], db: &MctDatabase) -> Vec<(String, String)> {
    let count = u16::from_le_bytes([rec[4], rec[5]]) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 6;
    for _ in 0..count {
        let sym = Sym(u32::from_le_bytes([
            rec[at],
            rec[at + 1],
            rec[at + 2],
            rec[at + 3],
        ]));
        let len = u16::from_le_bytes([rec[at + 4], rec[at + 5]]) as usize;
        at += 6;
        let v = String::from_utf8_lossy(&rec[at..at + len]).into_owned();
        at += len;
        out.push((db.names.resolve(sym).to_string(), v));
    }
    out
}

fn encode_struct(n: McNodeId, name: Sym, code: IntervalCode) -> Vec<u8> {
    let mut out = Vec::with_capacity(18);
    out.extend_from_slice(&code.to_bytes());
    out.extend_from_slice(&name.0.to_le_bytes());
    out.extend_from_slice(&n.0.to_le_bytes());
    out
}

fn pack_rid(rid: RecordId) -> u64 {
    (u64::from(rid.page.0) << 16) | u64::from(rid.slot)
}

fn unpack_rid(v: u64) -> RecordId {
    RecordId {
        page: mct_storage::PageId((v >> 16) as u32),
        slot: (v & 0xFFFF) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::MctDatabase;

    fn small_db() -> MctDatabase {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let genre = db.new_element("movie-genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let award = db.new_element("movie-award", green);
        db.set_content(award, "Oscar");
        db.append_child(McNodeId::DOCUMENT, award, green);
        for i in 0..10 {
            let m = db.new_element("movie", red);
            db.set_attr(m, "id", &format!("m{i}"));
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            if i % 2 == 0 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
            }
        }
        db
    }

    #[test]
    fn build_and_postings() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let red_movies = s.postings_named(red, "movie").unwrap();
        let green_movies = s.postings_named(green, "movie").unwrap();
        assert_eq!(red_movies.len(), 10);
        assert_eq!(green_movies.len(), 5);
        // Posting lists are sorted by start (document order).
        assert!(red_movies.windows(2).all(|w| w[0].code.start < w[1].code.start));
        // Unknown tag -> empty.
        assert!(s.postings_named(red, "nope").unwrap().is_empty());
    }

    #[test]
    fn content_and_attr_lookup() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(s.db.name_str(hits[0]), Some("name"));
        let byattr = s.attr_lookup("id", "m7").unwrap();
        assert_eq!(byattr.len(), 1);
        assert_eq!(s.db.name_str(byattr[0]), Some("movie"));
        assert!(s.content_lookup("Movie 99").unwrap().is_empty());
    }

    #[test]
    fn fetch_content_via_heap() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        assert_eq!(s.fetch_content(hits[0]).unwrap().as_deref(), Some("Movie 3"));
        let red = s.db.color("red").unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(s.fetch_content(movies[0].node).unwrap(), None);
        let attrs = s.fetch_attrs(movies[0].node).unwrap();
        assert_eq!(attrs, vec![("id".to_string(), "m0".to_string())]);
    }

    #[test]
    fn link_probe_matches_direct() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let red_movies = s.postings_named(red, "movie").unwrap();
        for r in &red_movies {
            let via_probe = s.link_probe(r.node, green).unwrap();
            let via_direct = s.link_direct(r.node, green);
            match (via_probe, via_direct) {
                (Some(p), Some(d)) => {
                    assert_eq!(p.start, d.start);
                    assert_eq!(p.end, d.end);
                }
                (None, None) => {}
                other => panic!("probe/direct disagree: {other:?}"),
            }
        }
        // Exactly the even movies are green.
        let crossings = red_movies
            .iter()
            .filter(|r| s.link_direct(r.node, green).is_some())
            .count();
        assert_eq!(crossings, 5);
    }

    #[test]
    fn stats_count_structural_replication() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let st = s.stats();
        // 2 hierarchy roots + 10 movies + 10 names = 22 elements.
        assert_eq!(st.num_elements, 22);
        // movies with 2 colors: 5 extra structural records.
        assert_eq!(st.num_structural, 27);
        assert_eq!(st.num_attrs, 10);
        assert_eq!(st.num_content, 12);
        assert!(st.data_bytes > 0);
        assert!(st.index_bytes > 0);
    }

    #[test]
    fn update_content_is_visible_everywhere() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let hits = s.content_lookup("Movie 3").unwrap();
        let n = hits[0];
        s.update_content(n, "Renamed").unwrap();
        assert!(s.content_lookup("Movie 3").unwrap().is_empty());
        assert_eq!(s.content_lookup("Renamed").unwrap(), vec![n]);
        assert_eq!(s.fetch_content(n).unwrap().as_deref(), Some("Renamed"));
        assert_eq!(s.db.content(n), Some("Renamed"));
    }

    #[test]
    fn insert_element_write_through() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        let genre = s.postings_named(red, "movie-genre").unwrap()[0].node;
        let m = s.db.new_element("movie", red);
        s.db.set_content(m, "Fresh Movie");
        s.db.append_child(genre, m, red);
        if !s.db.try_assign_gap_codes(m, red) {
            s.db.annotate(red);
            s.reindex_color(red).unwrap();
        }
        s.persist_new_element(m).unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(movies.len(), 11);
        assert_eq!(s.content_lookup("Fresh Movie").unwrap(), vec![m]);
    }

    #[test]
    fn unindex_node_removes_from_postings() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let green = s.db.color("green").unwrap();
        let gm = s.postings_named(green, "movie").unwrap();
        let victim = gm[0].node;
        s.unindex_node(victim, green).unwrap();
        s.db.remove_color(victim, green);
        let after = s.postings_named(green, "movie").unwrap();
        assert_eq!(after.len(), gm.len() - 1);
        assert!(after.iter().all(|r| r.node != victim));
        // Red side unaffected.
        let red = s.db.color("red").unwrap();
        assert_eq!(s.postings_named(red, "movie").unwrap().len(), 10);
    }

    #[test]
    fn reindex_color_after_renumber() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        s.db.annotate(red); // force renumber
        s.reindex_color(red).unwrap();
        let movies = s.postings_named(red, "movie").unwrap();
        assert_eq!(movies.len(), 10);
        for r in &movies {
            assert_eq!(s.db.code(r.node, red).unwrap().start, r.code.start);
        }
    }

    #[test]
    fn cold_cache_flush() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let red = s.db.color("red").unwrap();
        s.postings_named(red, "movie").unwrap();
        s.flush_cache().unwrap();
        s.pool.reset_stats();
        s.postings_named(red, "movie").unwrap();
        assert!(s.pool.stats().misses > 0, "cold read after flush");
    }
}
