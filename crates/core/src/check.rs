//! `mctck` — deep consistency verification of a [`StoredDb`].
//!
//! A multi-colored tree store keeps several redundant structures per
//! node — one structural record *per color*, tag/link/content/attr
//! indexes, interval codes — which multiplies the ways a partial
//! update can leave them silently disagreeing. [`StoredDb::check`]
//! cross-checks every pair:
//!
//! * **logical shape** — every color's codes are clean (annotated),
//!   and along each colored tree the interval codes are
//!   nested-or-disjoint, in per-color document order, with
//!   `level = parent.level + 1`;
//! * **struct heap ↔ logical tree** — each per-color structural
//!   record names an attached element whose code and tag match, and
//!   record counts equal attached-node counts;
//! * **tag index ↔ logical tree** — every tag-index entry decodes to
//!   an attached element with that tag and exactly that code, and
//!   every attached element is present (count equality + uniqueness);
//! * **link index ↔ struct heap** (color-link symmetry, §6.2) — each
//!   link entry resolves through the packed record id to a structural
//!   record for the same node with the logical code, and every node
//!   carrying the color links back;
//! * **content/attr heaps + indexes ↔ logical nodes** — record ids
//!   round-trip, heap payloads equal logical content/attributes, and
//!   every value-index entry matches the node it names.
//!
//! The checker is read-only (`&self`, shared buffer pool), so a
//! server can run it under its read lock; it also runs offline via
//! the `mctck` binary and after WAL recovery in the crash tests.
//! Every violation found bumps the `check.violations` counter.

use crate::color::ColorId;
use crate::database::{McNodeId, McNodeKind};
use crate::persist::{decode_attrs, decode_content, unpack_rid, StoredDb};
use mct_storage::{DiskManager, IntervalCode, KeyEncoder};
use mct_obs::Counter;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::OnceLock;

/// Cap on retained violation details; everything is still *counted*.
const MAX_DETAILS: usize = 256;

struct CheckCounters {
    runs: Counter,
    violations: Counter,
}

fn check_counters() -> &'static CheckCounters {
    static C: OnceLock<CheckCounters> = OnceLock::new();
    C.get_or_init(|| CheckCounters {
        runs: mct_obs::counter("check.runs"),
        violations: mct_obs::counter("check.violations"),
    })
}

/// One invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable category slug (e.g. `"code-nesting"`, `"link-orphan"`).
    pub category: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.category, self.detail)
    }
}

/// Outcome of a [`StoredDb::check`] run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Violations found (details capped at [`MAX_DETAILS`]; the count
    /// in [`CheckReport::total_violations`] is exact).
    pub violations: Vec<Violation>,
    /// Exact number of violations found.
    pub total_violations: u64,
    /// Colors examined.
    pub colors_checked: usize,
    /// Attached (node, color) structural pairs examined.
    pub structural_checked: u64,
    /// Heap records + index entries examined.
    pub records_checked: u64,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.total_violations == 0
    }

    fn flag(&mut self, category: &'static str, detail: String) {
        self.total_violations += 1;
        check_counters().violations.inc();
        if self.violations.len() < MAX_DETAILS {
            self.violations.push(Violation { category, detail });
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mctck: {} color(s), {} structural pair(s), {} record(s)/entr(ies) checked",
            self.colors_checked, self.structural_checked, self.records_checked
        )?;
        if self.is_ok() {
            write!(f, "mctck: OK — zero violations")
        } else {
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            if self.total_violations as usize > self.violations.len() {
                writeln!(
                    f,
                    "  … and {} more",
                    self.total_violations as usize - self.violations.len()
                )?;
            }
            write!(f, "mctck: FAILED — {} violation(s)", self.total_violations)
        }
    }
}

impl<D: DiskManager> StoredDb<D> {
    /// Run the full cross-structure consistency check (read-only).
    ///
    /// I/O errors and corrupt pages abort the check with `Err`; a
    /// structurally *inconsistent* but readable store returns `Ok`
    /// with the violations in the report.
    pub fn check(&self) -> mct_storage::Result<CheckReport> {
        check_counters().runs.inc();
        let mut rep = CheckReport::default();
        let ncolors = self.db.palette.len();
        rep.colors_checked = ncolors;

        // Attached node set per color, in per-color document order,
        // from the logical trees — the ground truth the physical
        // structures are checked against.
        let mut attached: Vec<Vec<McNodeId>> = Vec::with_capacity(ncolors);
        for ci in 0..ncolors {
            let c = ColorId(ci as u8);
            if self.db.is_dirty(c) {
                rep.flag(
                    "dirty-color",
                    format!("color {ci} has stale interval codes (annotate pending)"),
                );
                attached.push(Vec::new());
                continue;
            }
            let nodes: Vec<McNodeId> = self
                .db
                .descendants_or_self(McNodeId::DOCUMENT, c)
                .skip(1)
                .collect();
            self.check_codes(c, &nodes, &mut rep);
            attached.push(nodes);
        }

        for (ci, nodes) in attached.iter().enumerate() {
            let c = ColorId(ci as u8);
            if self.db.is_dirty(c) {
                continue; // codes unusable; already flagged
            }
            self.check_struct_heap(c, nodes, &mut rep)?;
            self.check_tag_index(c, nodes, &mut rep)?;
            self.check_link_index(c, nodes, &mut rep)?;
        }
        self.check_color_bits(&attached, &mut rep);
        self.check_content(&mut rep)?;
        self.check_attrs(&mut rep)?;
        Ok(rep)
    }

    /// Interval codes along one colored tree: present, nested within
    /// the parent, disjoint and ordered across siblings, level =
    /// parent level + 1, and strictly increasing starts in pre-order
    /// (per-color document order).
    fn check_codes(&self, c: ColorId, nodes: &[McNodeId], rep: &mut CheckReport) {
        let ci = c.index();
        let mut last_start: Option<u32> = None;
        for &n in nodes {
            rep.structural_checked += 1;
            let Some(code) = self.db.code(n, c) else {
                rep.flag("missing-code", format!("color {ci}: node n{} has no code", n.0));
                continue;
            };
            if code.start > code.end {
                rep.flag(
                    "code-inverted",
                    format!("color {ci}: n{} has start {} > end {}", n.0, code.start, code.end),
                );
            }
            if let Some(prev) = last_start {
                if code.start <= prev {
                    rep.flag(
                        "doc-order",
                        format!(
                            "color {ci}: n{} start {} not after predecessor start {prev}",
                            n.0, code.start
                        ),
                    );
                }
            }
            last_start = Some(code.start);
            // Against the parent (the document root has no code).
            if let Some(p) = self.db.parent(n, c) {
                if p != McNodeId::DOCUMENT {
                    if let Some(pc) = self.db.code(p, c) {
                        if code.start <= pc.start || code.end > pc.end {
                            rep.flag(
                                "code-nesting",
                                format!(
                                    "color {ci}: n{} [{},{}] not inside parent n{} [{},{}]",
                                    n.0, code.start, code.end, p.0, pc.start, pc.end
                                ),
                            );
                        }
                        if code.level != pc.level + 1 {
                            rep.flag(
                                "code-level",
                                format!(
                                    "color {ci}: n{} level {} under parent level {}",
                                    n.0, code.level, pc.level
                                ),
                            );
                        }
                    }
                }
            }
            // Against the previous sibling: disjoint and ordered.
            let mut prev_sib: Option<McNodeId> = None;
            if let Some(p) = self.db.parent(n, c) {
                for s in self.db.children(p, c) {
                    if s == n {
                        break;
                    }
                    prev_sib = Some(s);
                }
            }
            if let Some(s) = prev_sib {
                if let Some(sc) = self.db.code(s, c) {
                    if sc.end >= code.start {
                        rep.flag(
                            "sibling-overlap",
                            format!(
                                "color {ci}: siblings n{} [{},{}] and n{} [{},{}] not disjoint",
                                s.0, sc.start, sc.end, n.0, code.start, code.end
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Per-color structural heap ↔ logical tree.
    fn check_struct_heap(
        &self,
        c: ColorId,
        attached: &[McNodeId],
        rep: &mut CheckReport,
    ) -> mct_storage::Result<()> {
        let ci = c.index();
        let want: HashSet<u32> = attached.iter().map(|n| n.0).collect();
        let mut seen = 0u64;
        let mut flags: Vec<(&'static str, String)> = Vec::new();
        self.struct_heaps[ci].scan(&self.pool, |_rid, rec| {
            seen += 1;
            if rec.len() < 18 {
                flags.push((
                    "struct-record-short",
                    format!("color {ci}: structural record of {} bytes", rec.len()),
                ));
                return;
            }
            let code = IntervalCode::from_bytes(&rec[..10]);
            let name = u32::from_le_bytes(rec[10..14].try_into().expect("struct name"));
            let n = McNodeId(u32::from_le_bytes(rec[14..18].try_into().expect("struct node")));
            if !want.contains(&n.0) {
                flags.push((
                    "struct-orphan",
                    format!("color {ci}: structural record for unattached node n{}", n.0),
                ));
                return;
            }
            match self.db.code(n, c) {
                Some(logical) if logical == code => {}
                Some(logical) => flags.push((
                    "struct-code-drift",
                    format!(
                        "color {ci}: n{} stored [{},{}]@{} vs logical [{},{}]@{}",
                        n.0, code.start, code.end, code.level,
                        logical.start, logical.end, logical.level
                    ),
                )),
                None => flags.push((
                    "struct-code-drift",
                    format!("color {ci}: n{} stored but has no logical code", n.0),
                )),
            }
            if self.db.node(n).name.map(|s| s.0) != Some(name) {
                flags.push((
                    "struct-tag-drift",
                    format!("color {ci}: n{} stored under wrong tag sym {name}", n.0),
                ));
            }
        })?;
        rep.records_checked += seen;
        for (cat, detail) in flags {
            rep.flag(cat, detail);
        }
        if seen != attached.len() as u64 {
            rep.flag(
                "struct-count",
                format!(
                    "color {ci}: {} structural record(s) vs {} attached node(s)",
                    seen,
                    attached.len()
                ),
            );
        }
        Ok(())
    }

    /// Per-color tag index ↔ logical tree.
    fn check_tag_index(
        &self,
        c: ColorId,
        attached: &[McNodeId],
        rep: &mut CheckReport,
    ) -> mct_storage::Result<()> {
        let ci = c.index();
        let want: HashSet<u32> = attached.iter().map(|n| n.0).collect();
        let entries = self.tag_indexes[ci].btree().range_vec(&self.pool, &[], None)?;
        rep.records_checked += entries.len() as u64;
        let mut covered: HashSet<u32> = HashSet::new();
        for (key, val) in &entries {
            if key.len() != 14 {
                rep.flag(
                    "tag-key-malformed",
                    format!("color {ci}: tag key of {} bytes", key.len()),
                );
                continue;
            }
            let tag = u32::from_be_bytes(key[..4].try_into().expect("tag prefix"));
            let code = IntervalCode::from_bytes(&key[4..14]);
            let n = McNodeId(*val as u32);
            if !want.contains(&n.0) {
                rep.flag(
                    "tag-orphan",
                    format!("color {ci}: tag entry for unattached node n{}", n.0),
                );
                continue;
            }
            covered.insert(n.0);
            if self.db.node(n).name.map(|s| s.0) != Some(tag) {
                rep.flag(
                    "tag-drift",
                    format!("color {ci}: n{} indexed under wrong tag sym {tag}", n.0),
                );
            }
            if self.db.code(n, c) != Some(code) {
                rep.flag(
                    "tag-code-drift",
                    format!("color {ci}: n{} tag-indexed with a stale code", n.0),
                );
            }
        }
        if entries.len() != attached.len() {
            rep.flag(
                "tag-count",
                format!(
                    "color {ci}: {} tag entr(ies) vs {} attached node(s)",
                    entries.len(),
                    attached.len()
                ),
            );
        }
        for &n in attached {
            if !covered.contains(&n.0) {
                rep.flag(
                    "tag-missing",
                    format!("color {ci}: attached node n{} absent from the tag index", n.0),
                );
            }
        }
        Ok(())
    }

    /// Per-color link index ↔ struct heap ↔ logical code (the §6.2
    /// back-links the cross-tree join descends through).
    fn check_link_index(
        &self,
        c: ColorId,
        attached: &[McNodeId],
        rep: &mut CheckReport,
    ) -> mct_storage::Result<()> {
        let ci = c.index();
        let entries = self.link_indexes[ci].range_vec(&self.pool, &[], None)?;
        rep.records_checked += entries.len() as u64;
        let mut linked: HashSet<u32> = HashSet::new();
        for (key, packed) in &entries {
            if key.len() != 4 {
                rep.flag(
                    "link-key-malformed",
                    format!("color {ci}: link key of {} bytes", key.len()),
                );
                continue;
            }
            let n = McNodeId(u32::from_be_bytes(key[..4].try_into().expect("link key")));
            linked.insert(n.0);
            let rec = match self.struct_heaps[ci].get(&self.pool, unpack_rid(*packed)) {
                Ok(rec) => rec,
                Err(mct_storage::StorageError::RecordNotFound { .. }) => {
                    rep.flag(
                        "link-dangling",
                        format!("color {ci}: n{} links to a deleted structural record", n.0),
                    );
                    continue;
                }
                Err(e) => return Err(e),
            };
            if rec.len() < 18 {
                rep.flag(
                    "struct-record-short",
                    format!("color {ci}: linked structural record of {} bytes", rec.len()),
                );
                continue;
            }
            let rec_node = McNodeId(u32::from_le_bytes(rec[14..18].try_into().expect("node")));
            if rec_node != n {
                rep.flag(
                    "link-mismatch",
                    format!("color {ci}: n{} links to a record for n{}", n.0, rec_node.0),
                );
            }
            let code = IntervalCode::from_bytes(&rec[..10]);
            if self.db.code(n, c) != Some(code) {
                rep.flag(
                    "link-code-drift",
                    format!("color {ci}: n{} link resolves to a stale code", n.0),
                );
            }
        }
        for &n in attached {
            if !linked.contains(&n.0) {
                rep.flag(
                    "link-missing",
                    format!("color {ci}: attached node n{} has no link entry", n.0),
                );
            }
        }
        for n in &linked {
            if !attached.iter().any(|a| a.0 == *n) {
                rep.flag(
                    "link-orphan",
                    format!("color {ci}: link entry for unattached node n{n}"),
                );
            }
        }
        Ok(())
    }

    /// `dm:colors` bits ↔ tree attachment (color-link symmetry at the
    /// logical level: a node claims exactly the colors whose trees
    /// contain it).
    fn check_color_bits(&self, attached: &[Vec<McNodeId>], rep: &mut CheckReport) {
        let mut in_tree: Vec<HashSet<u32>> = attached
            .iter()
            .map(|v| v.iter().map(|n| n.0).collect())
            .collect();
        for i in 0..self.db.len() {
            let n = McNodeId(i as u32);
            if n == McNodeId::DOCUMENT || self.db.node(n).kind != McNodeKind::Element {
                continue;
            }
            let colors = self.db.colors(n);
            for (ci, tree) in in_tree.iter_mut().enumerate() {
                if self.db.is_dirty(ColorId(ci as u8)) {
                    continue;
                }
                let claimed = colors.contains(ColorId(ci as u8));
                let present = tree.contains(&n.0);
                if claimed != present {
                    rep.flag(
                        "color-bit-mismatch",
                        format!(
                            "n{} {} color {ci} but is {} its tree",
                            n.0,
                            if claimed { "claims" } else { "lacks" },
                            if present { "in" } else { "not in" }
                        ),
                    );
                }
            }
        }
    }

    /// Content heap + content index ↔ logical node content.
    fn check_content(&self, rep: &mut CheckReport) -> mct_storage::Result<()> {
        // Forward: every colored element with content round-trips.
        for i in 0..self.db.len() {
            let n = McNodeId(i as u32);
            let node = self.db.node(n);
            if node.kind != McNodeKind::Element || node.colors.is_empty() {
                continue;
            }
            let Some(content) = node.content.as_deref() else {
                continue;
            };
            rep.records_checked += 1;
            match self.content_rid.get(i).copied().flatten() {
                None => rep.flag(
                    "content-rid-missing",
                    format!("n{} has content but no heap record id", n.0),
                ),
                Some(rid) => match self.content_heap.get(&self.pool, rid) {
                    Ok(rec) => {
                        let (rn, rv) = decode_content(&rec);
                        if rn != n || rv != content {
                            rep.flag(
                                "content-drift",
                                format!("n{} heap record disagrees with logical content", n.0),
                            );
                        }
                    }
                    Err(mct_storage::StorageError::RecordNotFound { .. }) => rep.flag(
                        "content-rid-dangling",
                        format!("n{} content record id points at a deleted slot", n.0),
                    ),
                    Err(e) => return Err(e),
                },
            }
            if !self
                .content_index
                .lookup(&self.pool, content)?
                .contains(&u64::from(n.0))
            {
                rep.flag(
                    "content-index-missing",
                    format!("n{} content absent from the content index", n.0),
                );
            }
        }
        // Reverse: every index entry names a node with that content.
        let entries = self.content_index.btree().range_vec(&self.pool, &[], None)?;
        rep.records_checked += entries.len() as u64;
        for (key, val) in &entries {
            if key.len() < 9 {
                rep.flag("content-key-malformed", format!("key of {} bytes", key.len()));
                continue;
            }
            let value = String::from_utf8_lossy(&key[..key.len() - 9]);
            let n = McNodeId(*val as u32);
            if n.index() >= self.db.len() || self.db.content(n) != Some(value.as_ref()) {
                rep.flag(
                    "content-index-orphan",
                    format!("content index maps {value:?} to n{} which disagrees", n.0),
                );
            }
        }
        Ok(())
    }

    /// Attribute heap + attribute index ↔ logical node attributes.
    fn check_attrs(&self, rep: &mut CheckReport) -> mct_storage::Result<()> {
        for i in 0..self.db.len() {
            let n = McNodeId(i as u32);
            let node = self.db.node(n);
            if node.kind != McNodeKind::Element || node.colors.is_empty() || node.attrs.is_empty() {
                continue;
            }
            rep.records_checked += 1;
            match self.attr_rid.get(i).copied().flatten() {
                None => rep.flag(
                    "attr-rid-missing",
                    format!("n{} has attributes but no heap record id", n.0),
                ),
                Some(rid) => match self.attr_heap.get(&self.pool, rid) {
                    Ok(rec) => {
                        let stored = decode_attrs(&rec, &self.db);
                        let logical: Vec<(String, String)> = node
                            .attrs
                            .iter()
                            .map(|(s, v)| (self.db.names.resolve(*s).to_string(), v.to_string()))
                            .collect();
                        if stored != logical {
                            rep.flag(
                                "attr-drift",
                                format!("n{} heap attributes disagree with logical ones", n.0),
                            );
                        }
                    }
                    Err(mct_storage::StorageError::RecordNotFound { .. }) => rep.flag(
                        "attr-rid-dangling",
                        format!("n{} attribute record id points at a deleted slot", n.0),
                    ),
                    Err(e) => return Err(e),
                },
            }
            for (s, v) in &node.attrs {
                let key = format!("{}={}", self.db.names.resolve(*s), v);
                if !self
                    .attr_index
                    .lookup(&self.pool, &key)?
                    .contains(&u64::from(n.0))
                {
                    rep.flag(
                        "attr-index-missing",
                        format!("n{} attribute {key:?} absent from the index", n.0),
                    );
                }
            }
        }
        // Reverse over the attribute index.
        let entries = self.attr_index.btree().range_vec(&self.pool, &[], None)?;
        rep.records_checked += entries.len() as u64;
        let mut by_node: HashMap<u32, Vec<String>> = HashMap::new();
        for (key, val) in &entries {
            if key.len() < 9 {
                rep.flag("attr-key-malformed", format!("key of {} bytes", key.len()));
                continue;
            }
            by_node
                .entry(*val as u32)
                .or_default()
                .push(String::from_utf8_lossy(&key[..key.len() - 9]).into_owned());
        }
        for (node, keys) in &by_node {
            let n = McNodeId(*node);
            if n.index() >= self.db.len() {
                rep.flag("attr-index-orphan", format!("attr index names unknown n{node}"));
                continue;
            }
            let logical: HashSet<String> = self
                .db
                .node(n)
                .attrs
                .iter()
                .map(|(s, v)| format!("{}={}", self.db.names.resolve(*s), v))
                .collect();
            for k in keys {
                if !logical.contains(k) {
                    rep.flag(
                        "attr-index-orphan",
                        format!("attr index maps {k:?} to n{node} which lacks it"),
                    );
                }
            }
        }
        Ok(())
    }
}

/// `KeyEncoder` is used by callers constructing probes; referenced
/// here so the checker's key formats stay in one import graph.
#[allow(unused)]
type _KeyEncoderAlias = KeyEncoder;

#[cfg(test)]
mod tests {
    use crate::database::{McNodeId, MctDatabase};
    use crate::persist::StoredDb;

    fn small_db() -> MctDatabase {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let genre = db.new_element("movie-genre", red);
        db.set_content(genre, "Comedy");
        db.append_child(McNodeId::DOCUMENT, genre, red);
        let award = db.new_element("movie-award", green);
        db.set_content(award, "Oscar");
        db.append_child(McNodeId::DOCUMENT, award, green);
        for i in 0..10 {
            let m = db.new_element("movie", red);
            db.set_attr(m, "id", &format!("m{i}"));
            db.append_child(genre, m, red);
            let name = db.new_element("name", red);
            db.set_content(name, &format!("Movie {i}"));
            db.append_child(m, name, red);
            if i % 2 == 0 {
                db.add_node_color(m, green);
                db.append_child(award, m, green);
            }
        }
        db
    }

    #[test]
    fn clean_build_passes() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let rep = s.check().unwrap();
        assert!(rep.is_ok(), "clean build must verify: {rep}");
        assert_eq!(rep.colors_checked, 2);
        assert!(rep.structural_checked > 0);
        assert!(rep.records_checked > 0);
    }

    #[test]
    fn still_ok_after_write_through_updates() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let n = s.content_lookup("Movie 3").unwrap()[0];
        s.update_content(n, "Renamed").unwrap();
        let green = s.db.color("green").unwrap();
        let victim = s.postings_named(green, "movie").unwrap()[0].node;
        s.unindex_node(victim, green).unwrap();
        s.db.remove_color(victim, green);
        if s.db.is_dirty(green) {
            s.db.annotate(green);
            s.reindex_color(green).unwrap();
        }
        let rep = s.check().unwrap();
        assert!(rep.is_ok(), "maintained store must verify: {rep}");
    }

    #[test]
    fn detects_torn_structural_state() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        // Simulate a half-applied delete: drop the structural index
        // entries but "forget" the logical color removal.
        let green = s.db.color("green").unwrap();
        let victim = s.postings_named(green, "movie").unwrap()[0].node;
        s.unindex_node(victim, green).unwrap();
        // (no db.remove_color — the logical side still claims green)
        let rep = s.check().unwrap();
        assert!(!rep.is_ok(), "torn delete must be caught");
        assert!(
            rep.violations.iter().any(|v| v.category == "link-missing"
                || v.category == "tag-missing"
                || v.category == "struct-count"),
            "wrong categories: {rep}"
        );
    }

    #[test]
    fn detects_content_index_drift() {
        let mut s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let n = s.content_lookup("Movie 3").unwrap()[0];
        // Mutate only the logical content, skipping heap + index.
        s.db.set_content(n, "Silently Edited");
        let rep = s.check().unwrap();
        assert!(!rep.is_ok());
        assert!(
            rep.violations.iter().any(|v| v.category.starts_with("content-")),
            "wrong categories: {rep}"
        );
    }

    #[test]
    fn report_renders_both_outcomes() {
        let s = StoredDb::build(small_db(), 4 * 1024 * 1024).unwrap();
        let rep = s.check().unwrap();
        assert!(format!("{rep}").contains("zero violations"));
        let mut s = s;
        let n = s.content_lookup("Movie 3").unwrap()[0];
        s.db.set_content(n, "Drift");
        let rep = s.check().unwrap();
        assert!(format!("{rep}").contains("FAILED"));
    }
}
