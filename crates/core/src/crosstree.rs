//! The cross-tree join access method (§6.2).
//!
//! "A color transition is accomplished by a *cross-tree join* access
//! method, which simply follows the links described above to obtain
//! the structural node of each element for the color being
//! transitioned to. This bulk access method is implemented in a
//! straightforward fashion as an attribute-value based join."
//!
//! [`cross_tree_join`] is that method: for each input structural
//! reference in the source color, it probes the target color's link
//! index (a B+-tree keyed by node id — the "attribute") and fetches
//! the target structural record; inputs without the target color drop
//! out. The output is re-sorted into the target tree's local order so
//! downstream structural joins can consume it directly.
//!
//! [`cross_tree_join_direct`] is the ablation variant (A1 in
//! DESIGN.md): it follows in-memory links with no page traffic,
//! quantifying the paper's speculation that "a more sophisticated
//! implementation could bring down the cost of a color crossing
//! substantially".

use crate::color::ColorId;
use crate::persist::{StoredDb, StructRef};
use mct_obs::Counter;
use mct_storage::DiskManager;
use std::sync::OnceLock;

/// Global-registry handles for color transitions
/// (`query.crosstree.*`), covering both join variants.
struct CrossTreeCounters {
    calls: Counter,
    input_rows: Counter,
    output_rows: Counter,
    transitions: Counter,
}

fn crosstree_counters() -> &'static CrossTreeCounters {
    static C: OnceLock<CrossTreeCounters> = OnceLock::new();
    C.get_or_init(|| CrossTreeCounters {
        calls: mct_obs::counter("query.crosstree.calls"),
        input_rows: mct_obs::counter("query.crosstree.input_rows"),
        output_rows: mct_obs::counter("query.crosstree.output_rows"),
        transitions: mct_obs::counter("query.crosstree.transitions"),
    })
}

/// Bulk color transition via the link-index (attribute-value) join —
/// the paper's implementation. Output is sorted by target-tree start.
/// Takes `&StoredDb`: probes are pure reads through the concurrent
/// buffer pool, so callers may fan input partitions across threads.
pub fn cross_tree_join<D: DiskManager>(
    stored: &StoredDb<D>,
    input: &[StructRef],
    to: ColorId,
) -> mct_storage::Result<Vec<StructRef>> {
    let _span = mct_obs::trace::span("crosstree.join");
    let c = crosstree_counters();
    c.calls.inc();
    c.input_rows.add(input.len() as u64);
    let mut out = Vec::with_capacity(input.len());
    for r in input {
        if let Some(code) = stored.link_probe(r.node, to)? {
            out.push(StructRef { node: r.node, code });
        }
    }
    out.sort_unstable_by_key(|r| r.code.start);
    c.output_rows.add(out.len() as u64);
    c.transitions.add(out.len() as u64);
    Ok(out)
}

/// Bulk color transition via direct in-memory links (ablation A1).
pub fn cross_tree_join_direct<D: DiskManager>(
    stored: &StoredDb<D>,
    input: &[StructRef],
    to: ColorId,
) -> Vec<StructRef> {
    let _span = mct_obs::trace::span("crosstree.join_direct");
    let c = crosstree_counters();
    c.calls.inc();
    c.input_rows.add(input.len() as u64);
    let mut out = Vec::with_capacity(input.len());
    for r in input {
        if let Some(code) = stored.link_direct(r.node, to) {
            out.push(StructRef { node: r.node, code });
        }
    }
    out.sort_unstable_by_key(|r| r.code.start);
    c.output_rows.add(out.len() as u64);
    c.transitions.add(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{McNodeId, MctDatabase};
    use crate::persist::StoredDb;

    /// Two hierarchies over 100 items: by-category (red) and by-decade
    /// (green); every third item is also green.
    fn stored() -> StoredDb {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let cat = db.new_element("category", red);
        db.append_child(McNodeId::DOCUMENT, cat, red);
        let decade = db.new_element("decade", green);
        db.append_child(McNodeId::DOCUMENT, decade, green);
        for i in 0..100 {
            let item = db.new_element("item", red);
            db.set_content(item, &format!("item {i}"));
            db.append_child(cat, item, red);
            if i % 3 == 0 {
                db.add_node_color(item, green);
                db.append_child(decade, item, green);
            }
        }
        StoredDb::build(db, 8 * 1024 * 1024).unwrap()
    }

    #[test]
    fn join_filters_and_reorders() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let reds = s.postings_named(red, "item").unwrap();
        assert_eq!(reds.len(), 100);
        let crossed = cross_tree_join(&s, &reds, green).unwrap();
        assert_eq!(crossed.len(), 34, "items 0,3,...,99");
        // Sorted in green local order.
        assert!(crossed.windows(2).all(|w| w[0].code.start < w[1].code.start));
        // Codes are green codes, not red ones.
        for r in &crossed {
            assert_eq!(r.code.start, s.db.code(r.node, green).unwrap().start);
        }
    }

    #[test]
    fn direct_variant_agrees_with_probe_variant() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let reds = s.postings_named(red, "item").unwrap();
        let a = cross_tree_join(&s, &reds, green).unwrap();
        let b = cross_tree_join_direct(&s, &reds, green);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.code.start, y.code.start);
            assert_eq!(x.code.end, y.code.end);
        }
    }

    #[test]
    fn probe_variant_recovers_level() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let reds = s.postings_named(red, "item").unwrap();
        let crossed = cross_tree_join(&s, &reds, green).unwrap();
        for r in &crossed {
            assert_eq!(r.code.level, s.db.code(r.node, green).unwrap().level);
        }
    }

    #[test]
    fn transition_to_same_color_is_identity_modulo_order() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let reds = s.postings_named(red, "item").unwrap();
        let same = cross_tree_join(&s, &reds, red).unwrap();
        assert_eq!(same.len(), reds.len());
        assert_eq!(same, reds);
    }

    #[test]
    fn empty_input_empty_output() {
        let s = stored();
        let green = s.db.color("green").unwrap();
        assert!(cross_tree_join(&s, &[], green).unwrap().is_empty());
    }

    #[test]
    fn probe_join_pays_page_accesses_direct_does_not() {
        let s = stored();
        let red = s.db.color("red").unwrap();
        let green = s.db.color("green").unwrap();
        let reds = s.postings_named(red, "item").unwrap();
        let mark = s.pool.stats();
        let _ = cross_tree_join_direct(&s, &reds, green);
        let direct_hits = s.pool.stats().delta_since(&mark).accesses();
        assert_eq!(direct_hits, 0, "direct variant touches no pages");
        let _ = cross_tree_join(&s, &reds, green).unwrap();
        let probe_hits = s.pool.stats().delta_since(&mark).accesses();
        assert!(probe_hits >= reds.len() as u64, "one probe per input at least");
    }
}
