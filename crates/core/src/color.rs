//! Colors: the distinguishing property of the MCT data model (§3.1).
//!
//! A database has a finite palette of colors; every node carries a
//! non-empty set of them (the `dm:colors` accessor, §3.2). Color sets
//! are a `u32` bitmask, capping a database at 32 colors — far beyond
//! the paper's workloads (TPC-W uses 5, SIGMOD-Record 2).

use std::fmt;

/// Identifier of a color within a database's palette.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColorId(pub u8);

impl ColorId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A set of colors (bitmask over the palette).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ColorSet(pub u32);

impl ColorSet {
    /// The empty set.
    pub const EMPTY: ColorSet = ColorSet(0);

    /// Singleton set.
    #[inline]
    pub fn single(c: ColorId) -> ColorSet {
        ColorSet(1 << c.0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, c: ColorId) -> bool {
        self.0 & (1 << c.0) != 0
    }

    /// Add a color (returns the new set).
    #[inline]
    #[must_use]
    pub fn with(self, c: ColorId) -> ColorSet {
        ColorSet(self.0 | (1 << c.0))
    }

    /// Remove a color (returns the new set).
    #[inline]
    #[must_use]
    pub fn without(self, c: ColorId) -> ColorSet {
        ColorSet(self.0 & !(1 << c.0))
    }

    /// Union.
    #[inline]
    #[must_use]
    pub fn union(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 & other.0)
    }

    /// Number of colors in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no colors are present.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over member colors in id order.
    pub fn iter(self) -> impl Iterator<Item = ColorId> {
        (0..32u8)
            .filter(move |&i| self.0 & (1 << i) != 0)
            .map(ColorId)
    }
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c:?}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ColorId> for ColorSet {
    fn from_iter<I: IntoIterator<Item = ColorId>>(iter: I) -> Self {
        iter.into_iter()
            .fold(ColorSet::EMPTY, |acc, c| acc.with(c))
    }
}

/// The palette: the database's registered colors, by name.
#[derive(Clone, Debug, Default)]
pub struct Palette {
    names: Vec<String>,
}

impl Palette {
    /// Empty palette.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a color (idempotent by name).
    ///
    /// # Panics
    /// Panics when the 32-color limit is exceeded.
    pub fn register(&mut self, name: &str) -> ColorId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return ColorId(i as u8);
        }
        assert!(self.names.len() < 32, "palette limited to 32 colors");
        self.names.push(name.to_string());
        ColorId((self.names.len() - 1) as u8)
    }

    /// Look up a color by name without registering.
    pub fn get(&self, name: &str) -> Option<ColorId> {
        self.names.iter().position(|n| n == name).map(|i| ColorId(i as u8))
    }

    /// Name of a color.
    pub fn name(&self, c: ColorId) -> &str {
        &self.names[c.index()]
    }

    /// Number of registered colors.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no colors are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(ColorId, name)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ColorId(i as u8), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let r = ColorId(0);
        let g = ColorId(1);
        let b = ColorId(2);
        let rg = ColorSet::single(r).with(g);
        assert!(rg.contains(r));
        assert!(rg.contains(g));
        assert!(!rg.contains(b));
        assert_eq!(rg.len(), 2);
        assert_eq!(rg.without(r), ColorSet::single(g));
        assert_eq!(rg.union(ColorSet::single(b)).len(), 3);
        assert_eq!(rg.intersect(ColorSet::single(g)), ColorSet::single(g));
    }

    #[test]
    fn set_iteration_in_order() {
        let s: ColorSet = [ColorId(3), ColorId(0), ColorId(7)].into_iter().collect();
        let v: Vec<u8> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![0, 3, 7]);
    }

    #[test]
    fn empty_set() {
        assert!(ColorSet::EMPTY.is_empty());
        assert_eq!(ColorSet::EMPTY.len(), 0);
        assert_eq!(ColorSet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn palette_register_is_idempotent() {
        let mut p = Palette::new();
        let red = p.register("red");
        let green = p.register("green");
        assert_ne!(red, green);
        assert_eq!(p.register("red"), red);
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(red), "red");
        assert_eq!(p.get("green"), Some(green));
        assert_eq!(p.get("blue"), None);
    }

    #[test]
    fn high_color_ids_work() {
        let mut p = Palette::new();
        let ids: Vec<ColorId> = (0..32).map(|i| p.register(&format!("c{i}"))).collect();
        let all: ColorSet = ids.iter().copied().collect();
        assert_eq!(all.len(), 32);
        assert!(all.contains(ColorId(31)));
    }

    #[test]
    #[should_panic(expected = "32 colors")]
    fn palette_overflow_panics() {
        let mut p = Palette::new();
        for i in 0..33 {
            p.register(&format!("c{i}"));
        }
    }
}
