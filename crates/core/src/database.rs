//! The multi-colored tree database (§3 of the paper).
//!
//! An [`MctDatabase`] is the triple `(N, C, {T_c})` of Definition 3.2:
//! a shared node arena, a palette of colors, and one rooted ordered
//! tree per color over those nodes. Every colored tree is rooted at
//! the document node, which therefore carries all colors.
//!
//! **Physical modeling note.** Following Timber's design that the paper
//! builds on (§6.2, Figure 10), an element's text content and
//! attributes are stored *with* the element (one content record, one
//! attribute record), not as separate structural nodes. This bakes in
//! Definition 3.2(iii) — attribute and text nodes always carry all of
//! their element's colors — by construction, and matches the paper's
//! data-centric workloads (no mixed content). What is replicated per
//! color is exactly the *structural relationship* (the `Links` record
//! plus the `(start, end, level)` interval code), mirroring Figure 10's
//! one-structural-node-per-color layout.

use crate::color::{ColorId, ColorSet, Palette};
use mct_storage::IntervalCode;
use mct_xml::{Interner, Sym};
use std::fmt;

/// Identifier of a node in the MCT arena. `McNodeId(0)` is the
/// document node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McNodeId(pub u32);

impl McNodeId {
    /// The document node, root of every colored tree.
    pub const DOCUMENT: McNodeId = McNodeId(0);

    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for McNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

const NONE: u32 = u32::MAX;

/// Per-color structural links of one node (Figure 10's "structural
/// relationships node" for that color).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Links {
    pub parent: u32,
    pub first_child: u32,
    pub last_child: u32,
    pub prev: u32,
    pub next: u32,
    /// Whether the node belongs to this tree at all (it may carry the
    /// color while being temporarily detached during restructuring).
    pub attached: bool,
}

impl Default for Links {
    fn default() -> Self {
        Links {
            parent: NONE,
            first_child: NONE,
            last_child: NONE,
            prev: NONE,
            next: NONE,
            attached: false,
        }
    }
}

/// Sentinel interval code for "not annotated / not in tree".
pub(crate) const NO_CODE: IntervalCode = IntervalCode {
    start: u32::MAX,
    end: 0,
    level: 0,
};

/// Gap stride for interval numbering: consecutive code slots are this
/// far apart, leaving room for in-place insertions (see
/// [`MctDatabase::try_assign_gap_codes`]).
pub const CODE_STRIDE: u32 = 8;

/// One colored tree `T_c` (Definition 3.1): links + interval codes.
#[derive(Clone, Debug)]
pub(crate) struct ColorTree {
    pub links: Vec<Links>,
    pub codes: Vec<IntervalCode>,
    /// Number of nodes attached in this tree.
    pub node_count: u64,
    /// Codes need recomputation.
    pub dirty: bool,
}

impl ColorTree {
    fn new() -> Self {
        ColorTree {
            links: Vec::new(),
            codes: Vec::new(),
            node_count: 0,
            dirty: true,
        }
    }

    fn grow(&mut self, n: usize) {
        if self.links.len() < n {
            self.links.resize_with(n, Links::default);
            self.codes.resize(n, NO_CODE);
        }
    }

    #[inline]
    pub fn link(&self, n: McNodeId) -> &Links {
        &self.links[n.index()]
    }

    #[inline]
    fn link_mut(&mut self, n: McNodeId) -> &mut Links {
        &mut self.links[n.index()]
    }
}

/// Node kinds in the MCT arena (see module docs for why text and
/// attributes are folded into elements).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum McNodeKind {
    /// The document node.
    Document,
    /// An element (possibly with content and attributes).
    Element,
}

/// One node record in the arena.
#[derive(Clone, Debug)]
pub struct McNode {
    /// Kind of node.
    pub kind: McNodeKind,
    /// Element name.
    pub name: Option<Sym>,
    /// Text content (the element's single content node).
    pub content: Option<Box<str>>,
    /// Attributes as name/value pairs, in set order.
    pub attrs: Vec<(Sym, Box<str>)>,
    /// The node's colors (`dm:colors`, §3.2).
    pub colors: ColorSet,
}

/// The MCT database: shared nodes, a palette, and one tree per color.
/// `Clone` duplicates the full logical state — node ids included —
/// which differential tests rely on to build independent stores that
/// stay id-comparable (see `mct-sim`).
#[derive(Clone, Debug)]
pub struct MctDatabase {
    pub(crate) nodes: Vec<McNode>,
    /// Name interner shared by all colored trees.
    pub names: Interner,
    /// Registered colors.
    pub palette: Palette,
    pub(crate) trees: Vec<ColorTree>,
}

impl Default for MctDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl MctDatabase {
    /// Create a database containing only the document node (no colors).
    pub fn new() -> Self {
        MctDatabase {
            nodes: vec![McNode {
                kind: McNodeKind::Document,
                name: None,
                content: None,
                attrs: Vec::new(),
                colors: ColorSet::EMPTY,
            }],
            names: Interner::new(),
            palette: Palette::new(),
            trees: Vec::new(),
        }
    }

    /// Number of arena slots (including any detached nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the document node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrow a node record.
    #[inline]
    pub fn node(&self, n: McNodeId) -> &McNode {
        &self.nodes[n.index()]
    }

    pub(crate) fn tree(&self, c: ColorId) -> &ColorTree {
        &self.trees[c.index()]
    }

    pub(crate) fn tree_mut(&mut self, c: ColorId) -> &mut ColorTree {
        &mut self.trees[c.index()]
    }

    // ----- colors -----------------------------------------------------------

    /// Register a color. The document node becomes the root of the new
    /// colored tree (Definition 3.2: every tree shares the document
    /// root). Idempotent by name.
    pub fn add_color(&mut self, name: &str) -> ColorId {
        if let Some(c) = self.palette.get(name) {
            return c;
        }
        let c = self.palette.register(name);
        debug_assert_eq!(c.index(), self.trees.len());
        let mut t = ColorTree::new();
        t.grow(self.nodes.len());
        t.link_mut(McNodeId::DOCUMENT).attached = true;
        t.node_count = 1;
        self.trees.push(t);
        self.nodes[0].colors = self.nodes[0].colors.with(c);
        c
    }

    /// Color id by name.
    pub fn color(&self, name: &str) -> Option<ColorId> {
        self.palette.get(name)
    }

    /// `dm:colors` (§3.2): the colors of a node, always non-empty for
    /// attached nodes.
    #[inline]
    pub fn colors(&self, n: McNodeId) -> ColorSet {
        self.node(n).colors
    }

    // ----- constructors (§3.3) ---------------------------------------------

    /// *First-color* element constructor: a brand-new node with unique
    /// identity carrying color `c`, initially detached in `T_c`.
    pub fn new_element(&mut self, name: &str, c: ColorId) -> McNodeId {
        let sym = self.names.intern(name);
        self.new_element_sym(sym, c)
    }

    /// [`Self::new_element`] with a pre-interned name.
    pub fn new_element_sym(&mut self, name: Sym, c: ColorId) -> McNodeId {
        assert!(c.index() < self.trees.len(), "unregistered color {c:?}");
        let id = McNodeId(u32::try_from(self.nodes.len()).expect("MCT arena overflow"));
        self.nodes.push(McNode {
            kind: McNodeKind::Element,
            name: Some(name),
            content: None,
            attrs: Vec::new(),
            colors: ColorSet::single(c),
        });
        for t in &mut self.trees {
            t.grow(self.nodes.len());
        }
        id
    }

    /// Create an element with *no* colors yet — the transient state of
    /// an element constructor before `createColor` assigns its first
    /// color (§4.2). Such nodes are invisible to every colored tree
    /// and excluded from [`Self::counts`] until colored.
    pub fn new_element_uncolored(&mut self, name: &str) -> McNodeId {
        let sym = self.names.intern(name);
        let id = McNodeId(u32::try_from(self.nodes.len()).expect("MCT arena overflow"));
        self.nodes.push(McNode {
            kind: McNodeKind::Element,
            name: Some(sym),
            content: None,
            attrs: Vec::new(),
            colors: ColorSet::EMPTY,
        });
        for t in &mut self.trees {
            t.grow(self.nodes.len());
        }
        id
    }

    /// *Next-color* constructor: add color `c` to an existing node
    /// (same identity returned, per §3.3). The node is detached in
    /// `T_c` until appended.
    pub fn add_node_color(&mut self, n: McNodeId, c: ColorId) {
        assert!(c.index() < self.trees.len(), "unregistered color {c:?}");
        assert!(
            self.node(n).kind == McNodeKind::Element,
            "only elements take extra colors explicitly"
        );
        self.nodes[n.index()].colors = self.nodes[n.index()].colors.with(c);
    }

    /// Set (replace) the element's text content.
    pub fn set_content(&mut self, n: McNodeId, content: &str) {
        assert_eq!(self.node(n).kind, McNodeKind::Element);
        self.nodes[n.index()].content = Some(content.into());
    }

    /// The element's text content, if any.
    pub fn content(&self, n: McNodeId) -> Option<&str> {
        self.node(n).content.as_deref()
    }

    /// Set (replace) an attribute.
    pub fn set_attr(&mut self, n: McNodeId, name: &str, value: &str) {
        assert_eq!(self.node(n).kind, McNodeKind::Element);
        let sym = self.names.intern(name);
        let node = &mut self.nodes[n.index()];
        if let Some(slot) = node.attrs.iter_mut().find(|(s, _)| *s == sym) {
            slot.1 = value.into();
        } else {
            node.attrs.push((sym, value.into()));
        }
    }

    /// Attribute value by name.
    pub fn attr(&self, n: McNodeId, name: &str) -> Option<&str> {
        let sym = self.names.get(name)?;
        self.node(n)
            .attrs
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, v)| v.as_ref())
    }

    /// Element name string.
    pub fn name_str(&self, n: McNodeId) -> Option<&str> {
        self.node(n).name.map(|s| self.names.resolve(s))
    }

    // ----- structure mutation ------------------------------------------------

    /// Append `child` as the last child of `parent` in colored tree `c`.
    ///
    /// Both nodes must carry `c` (color compatibility), and `child`
    /// must not already be attached in `T_c` — a node occurs at most
    /// once per colored tree.
    pub fn append_child(&mut self, parent: McNodeId, child: McNodeId, c: ColorId) {
        self.attach_checks(parent, child, c);
        let t = self.tree_mut(c);
        let old_last = t.link(parent).last_child;
        {
            let l = t.link_mut(child);
            l.parent = parent.0;
            l.prev = old_last;
            l.next = NONE;
            l.attached = true;
        }
        if old_last == NONE {
            t.link_mut(parent).first_child = child.0;
        } else {
            t.links[old_last as usize].next = child.0;
        }
        t.link_mut(parent).last_child = child.0;
        t.node_count += 1;
        t.dirty = true;
    }

    /// Insert `child` immediately before `anchor` in tree `c`.
    pub fn insert_before(&mut self, anchor: McNodeId, child: McNodeId, c: ColorId) {
        let parent_raw = self.tree(c).link(anchor).parent;
        assert!(parent_raw != NONE, "insert_before: anchor detached in {c:?}");
        let parent = McNodeId(parent_raw);
        self.attach_checks(parent, child, c);
        let t = self.tree_mut(c);
        let prev = t.link(anchor).prev;
        {
            let l = t.link_mut(child);
            l.parent = parent.0;
            l.prev = prev;
            l.next = anchor.0;
            l.attached = true;
        }
        t.link_mut(anchor).prev = child.0;
        if prev == NONE {
            t.link_mut(parent).first_child = child.0;
        } else {
            t.links[prev as usize].next = child.0;
        }
        t.node_count += 1;
        t.dirty = true;
    }

    fn attach_checks(&self, parent: McNodeId, child: McNodeId, c: ColorId) {
        assert!(
            self.colors(parent).contains(c),
            "append: parent lacks color {c:?}"
        );
        assert!(
            self.colors(child).contains(c),
            "append: child lacks color {c:?} (use add_node_color first)"
        );
        assert!(
            !self.tree(c).link(child).attached,
            "append: node already occurs in tree {c:?} (at most once per colored tree)"
        );
        // Note: the parent may itself still be detached — first-color
        // constructors build trees bottom-up (§3.3), so whole detached
        // fragments are legal and get rooted when their top is appended.
    }

    /// Detach `n` (with its color-`c` subtree) from tree `c`. The node
    /// keeps the color; use [`Self::remove_color`] to drop it.
    pub fn detach(&mut self, n: McNodeId, c: ColorId) {
        let t = self.tree_mut(c);
        let l = *t.link(n);
        if !l.attached || l.parent == NONE {
            return;
        }
        if l.prev == NONE {
            t.links[l.parent as usize].first_child = l.next;
        } else {
            t.links[l.prev as usize].next = l.next;
        }
        if l.next == NONE {
            t.links[l.parent as usize].last_child = l.prev;
        } else {
            t.links[l.next as usize].prev = l.prev;
        }
        let lm = t.link_mut(n);
        lm.parent = NONE;
        lm.prev = NONE;
        lm.next = NONE;
        lm.attached = false;
        t.node_count -= 1;
        t.dirty = true;
    }

    /// Drop color `c` from node `n`: detaches it from `T_c` and removes
    /// the color. Its color-`c` children are detached too (recursively
    /// the whole `c`-subtree leaves the tree but keeps other colors).
    pub fn remove_color(&mut self, n: McNodeId, c: ColorId) {
        // Detach the subtree bottom-up.
        let subtree: Vec<McNodeId> = self.descendants_or_self(n, c).collect();
        for &d in subtree.iter().rev() {
            self.detach(d, c);
            self.nodes[d.index()].colors = self.nodes[d.index()].colors.without(c);
        }
    }

    // ----- color-aware accessors (§3.2) --------------------------------------

    /// `dm:parent($n, $c)`: parent in tree `c`, or `None` when the node
    /// lacks the color (color-incompatible) or is a root.
    #[inline]
    pub fn parent(&self, n: McNodeId, c: ColorId) -> Option<McNodeId> {
        if !self.colors(n).contains(c) {
            return None;
        }
        let p = self.tree(c).link(n).parent;
        (p != NONE).then_some(McNodeId(p))
    }

    /// `dm:children($n, $c)`: children in tree `c`, empty when
    /// color-incompatible.
    pub fn children(&self, n: McNodeId, c: ColorId) -> ChildIter<'_> {
        let first = if self.colors(n).contains(c) {
            self.tree(c).link(n).first_child
        } else {
            NONE
        };
        ChildIter {
            tree: self.tree(c),
            next: first,
        }
    }

    /// First color-`c` child named `name`.
    pub fn child_named(&self, n: McNodeId, name: &str, c: ColorId) -> Option<McNodeId> {
        let sym = self.names.get(name)?;
        self.children(n, c)
            .find(|&ch| self.node(ch).name == Some(sym))
    }

    /// Pre-order traversal of the color-`c` subtree, including `n`.
    /// Empty when color-incompatible.
    pub fn descendants_or_self(&self, n: McNodeId, c: ColorId) -> DescendIter<'_> {
        let start = if self.colors(n).contains(c) {
            Some(n)
        } else {
            None
        };
        DescendIter {
            tree: self.tree(c),
            root: n,
            next: start,
        }
    }

    /// Pre-order traversal excluding `n` itself.
    pub fn descendants(&self, n: McNodeId, c: ColorId) -> impl Iterator<Item = McNodeId> + '_ {
        self.descendants_or_self(n, c).skip(1)
    }

    /// Ancestors in tree `c`, nearest first, ending at the document.
    pub fn ancestors(&self, n: McNodeId, c: ColorId) -> impl Iterator<Item = McNodeId> + '_ {
        let mut cur = self.parent(n, c);
        std::iter::from_fn(move || {
            let r = cur?;
            cur = self.parent(r, c);
            Some(r)
        })
    }

    /// `dm:string-value($n, $c)`: concatenated content of the color-`c`
    /// subtree in local order; `None` when color-incompatible.
    pub fn string_value(&self, n: McNodeId, c: ColorId) -> Option<String> {
        if !self.colors(n).contains(c) {
            return None;
        }
        let mut out = String::new();
        for d in self.descendants_or_self(n, c) {
            if let Some(t) = &self.node(d).content {
                out.push_str(t);
            }
        }
        Some(out)
    }

    /// `dm:typed-value($n, $c)` as a number when it parses.
    pub fn typed_number(&self, n: McNodeId, c: ColorId) -> Option<f64> {
        self.string_value(n, c)?.trim().parse().ok()
    }

    // ----- interval codes & local order --------------------------------------

    /// (Re-)annotate tree `c` with gapped `(start, end, level)` codes by
    /// pre-order traversal (the *local order* of §3.1). Iterative, so
    /// arbitrarily deep trees are fine.
    pub fn annotate(&mut self, c: ColorId) {
        // Take the tree out to satisfy the borrow checker cheaply.
        let mut t = std::mem::replace(self.tree_mut(c), ColorTree::new());
        t.grow(self.nodes.len());
        for code in t.codes.iter_mut() {
            *code = NO_CODE;
        }
        let mut counter: u32 = 0;
        // Stack of (node, phase): phase 0 = assign start, phase 1 = assign end.
        let mut stack: Vec<(u32, bool)> = vec![(McNodeId::DOCUMENT.0, false)];
        let mut levels: Vec<u16> = vec![0; 1];
        while let Some((n, closing)) = stack.pop() {
            if closing {
                counter += CODE_STRIDE;
                t.codes[n as usize].end = counter;
                levels.pop();
                continue;
            }
            counter += CODE_STRIDE;
            t.codes[n as usize].start = counter;
            t.codes[n as usize].level = (levels.len() - 1) as u16;
            stack.push((n, true));
            levels.push(0); // placeholder; depth tracked by stack of closings
            // Push children in reverse so leftmost pops first.
            let mut kids: Vec<u32> = Vec::new();
            let mut cur = t.links[n as usize].first_child;
            while cur != NONE {
                kids.push(cur);
                cur = t.links[cur as usize].next;
            }
            for &k in kids.iter().rev() {
                stack.push((k, false));
            }
        }
        t.dirty = false;
        *self.tree_mut(c) = t;
    }

    /// Annotate only if dirty.
    pub fn ensure_annotated(&mut self, c: ColorId) {
        if self.tree(c).dirty {
            self.annotate(c);
        }
    }

    /// True when tree `c` needs re-annotation.
    pub fn is_dirty(&self, c: ColorId) -> bool {
        self.tree(c).dirty
    }

    /// Interval code of `n` in tree `c`.
    ///
    /// # Panics
    /// Panics if the tree is dirty (call [`Self::ensure_annotated`]).
    pub fn code(&self, n: McNodeId, c: ColorId) -> Option<IntervalCode> {
        assert!(!self.tree(c).dirty, "tree {c:?} is dirty; annotate first");
        let code = self.tree(c).codes[n.index()];
        (code.start != u32::MAX).then_some(code)
    }

    /// Try to assign codes to a freshly appended node `n` (a leaf of
    /// its `c`-subtree) inside the numbering gap left by
    /// [`CODE_STRIDE`], without renumbering the tree. Returns `false`
    /// when there is no room (caller should [`Self::annotate`] and
    /// rebuild dependent indexes). Clears the dirty flag on success.
    pub fn try_assign_gap_codes(&mut self, n: McNodeId, c: ColorId) -> bool {
        let (parent, prev) = {
            let l = self.tree(c).link(n);
            if !l.attached || l.parent == NONE || l.first_child != NONE {
                return false; // only leaf inserts take the fast path
            }
            (McNodeId(l.parent), l.prev)
        };
        let t = self.tree(c);
        let parent_code = t.codes[parent.index()];
        if parent_code.start == u32::MAX {
            return false; // tree was never annotated
        }
        let lower = if prev == NONE {
            parent_code.start
        } else {
            t.codes[prev as usize].end
        };
        let upper = {
            let next = t.link(n).next;
            if next == NONE {
                parent_code.end
            } else {
                t.codes[next as usize].start
            }
        };
        if upper <= lower || upper - lower < 3 {
            return false;
        }
        let start = lower + (upper - lower) / 3;
        let end = lower + 2 * (upper - lower) / 3;
        if start <= lower || end <= start || end >= upper {
            return false;
        }
        let t = self.tree_mut(c);
        t.codes[n.index()] = IntervalCode {
            start,
            end,
            level: parent_code.level + 1,
        };
        t.dirty = false;
        true
    }

    /// Nodes of tree `c` in local (pre-order) order.
    pub fn local_order(&mut self, c: ColorId) -> Vec<McNodeId> {
        self.ensure_annotated(c);
        self.descendants_or_self(McNodeId::DOCUMENT, c).collect()
    }

    // ----- statistics ---------------------------------------------------------

    /// Per-color attached node count (including the document node).
    pub fn tree_size(&self, c: ColorId) -> u64 {
        self.tree(c).node_count
    }

    /// `(elements, attributes, content_records)` over the whole arena
    /// (each element counted once, regardless of colors).
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut elements = 0;
        let mut attrs = 0;
        let mut contents = 0;
        for n in &self.nodes {
            if n.kind == McNodeKind::Element && !n.colors.is_empty() {
                elements += 1;
                attrs += n.attrs.len() as u64;
                if n.content.is_some() {
                    contents += 1;
                }
            }
        }
        (elements, attrs, contents)
    }

    /// Total structural records: Σ_c nodes attached in `T_c`
    /// (excluding the document roots). A node with k colors counts k
    /// times — exactly Figure 10's replication.
    pub fn structural_count(&self) -> u64 {
        self.trees.iter().map(|t| t.node_count - 1).sum()
    }

    /// Verify all per-tree doubly linked list invariants, color
    /// consistency, and (for clean trees) code consistency.
    pub fn check_invariants(&self) {
        for (ci, t) in self.trees.iter().enumerate() {
            let c = ColorId(ci as u8);
            let mut attached = 0u64;
            for (i, l) in t.links.iter().enumerate() {
                let n = McNodeId(i as u32);
                if !l.attached {
                    continue;
                }
                attached += 1;
                assert!(
                    self.colors(n).contains(c) || n == McNodeId::DOCUMENT,
                    "{n:?} attached in {c:?} without the color"
                );
                // Child list round-trip.
                let mut prev = NONE;
                let mut cur = l.first_child;
                while cur != NONE {
                    assert_eq!(t.links[cur as usize].prev, prev);
                    assert_eq!(t.links[cur as usize].parent, i as u32);
                    prev = cur;
                    cur = t.links[cur as usize].next;
                }
                assert_eq!(l.last_child, prev, "last_child mismatch for {n:?}");
            }
            assert_eq!(attached, t.node_count, "node_count mismatch in {c:?}");
            if !t.dirty {
                for n in self.descendants_or_self(McNodeId::DOCUMENT, c) {
                    let code = t.codes[n.index()];
                    assert_ne!(code.start, u32::MAX, "{n:?} missing code in {c:?}");
                    if let Some(p) = self.parent(n, c) {
                        assert!(
                            t.codes[p.index()].is_parent_of(&code),
                            "parent code of {n:?} in {c:?} inconsistent"
                        );
                    }
                }
            }
        }
    }
}

/// Iterator over a node's children in one colored tree.
pub struct ChildIter<'a> {
    tree: &'a ColorTree,
    next: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = McNodeId;
    fn next(&mut self) -> Option<McNodeId> {
        if self.next == NONE {
            return None;
        }
        let cur = self.next;
        self.next = self.tree.links[cur as usize].next;
        Some(McNodeId(cur))
    }
}

/// Pre-order iterator over a color-`c` subtree.
pub struct DescendIter<'a> {
    tree: &'a ColorTree,
    root: McNodeId,
    next: Option<McNodeId>,
}

impl Iterator for DescendIter<'_> {
    type Item = McNodeId;
    fn next(&mut self) -> Option<McNodeId> {
        let cur = self.next?;
        let l = &self.tree.links[cur.index()];
        self.next = if l.first_child != NONE {
            Some(McNodeId(l.first_child))
        } else {
            let mut up = cur;
            loop {
                if up == self.root {
                    break None;
                }
                let ul = &self.tree.links[up.index()];
                if ul.next != NONE {
                    break Some(McNodeId(ul.next));
                }
                if ul.parent == NONE {
                    break None;
                }
                up = McNodeId(ul.parent);
            }
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Figure 2 skeleton: red movie-genre hierarchy,
    /// green movie-award hierarchy, movies in both.
    fn figure2() -> (MctDatabase, ColorId, ColorId, McNodeId, McNodeId) {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");

        let genre = db.new_element("movie-genre", red);
        db.append_child(McNodeId::DOCUMENT, genre, red);
        db.set_content(genre, "Comedy");

        let award = db.new_element("movie-award", green);
        db.append_child(McNodeId::DOCUMENT, award, green);
        db.set_content(award, "Oscar-1950");

        // A movie in both hierarchies: same identity, two colors.
        let movie = db.new_element("movie", red);
        db.append_child(genre, movie, red);
        db.add_node_color(movie, green);
        db.append_child(award, movie, green);

        let name = db.new_element("name", red);
        db.set_content(name, "All About Eve");
        db.append_child(movie, name, red);
        db.add_node_color(name, green);
        db.append_child(movie, name, green);

        (db, red, green, movie, name)
    }

    #[test]
    fn multicolored_node_has_two_parents() {
        let (db, red, green, movie, _) = figure2();
        db.check_invariants();
        let red_parent = db.parent(movie, red).unwrap();
        let green_parent = db.parent(movie, green).unwrap();
        assert_ne!(red_parent, green_parent);
        assert_eq!(db.name_str(red_parent), Some("movie-genre"));
        assert_eq!(db.name_str(green_parent), Some("movie-award"));
    }

    #[test]
    fn color_incompatible_accessors_return_empty() {
        let (mut db, red, green, _, _) = figure2();
        let blue = db.add_color("blue");
        let genre = db.child_named(McNodeId::DOCUMENT, "movie-genre", red).unwrap();
        assert_eq!(db.parent(genre, blue), None);
        assert_eq!(db.children(genre, blue).count(), 0);
        assert_eq!(db.string_value(genre, blue), None);
        assert_eq!(db.parent(genre, green), None, "genre is not green");
    }

    #[test]
    fn colors_accessor() {
        let (db, red, green, movie, _) = figure2();
        let cs = db.colors(movie);
        assert!(cs.contains(red) && cs.contains(green));
        assert_eq!(cs.len(), 2);
        assert_eq!(db.colors(McNodeId::DOCUMENT).len(), 2, "document has all colors");
    }

    #[test]
    fn string_value_is_per_color() {
        let (mut db, red, green, movie, _) = figure2();
        // Add a green-only votes child (like Figure 2).
        let votes = db.new_element("votes", green);
        db.set_content(votes, "11");
        db.append_child(movie, votes, green);
        assert_eq!(db.string_value(movie, red).unwrap(), "All About Eve");
        assert_eq!(db.string_value(movie, green).unwrap(), "All About Eve11");
        assert_eq!(db.typed_number(votes, green), Some(11.0));
    }

    #[test]
    fn node_stored_once() {
        let (db, ..) = figure2();
        // 4 elements + document despite the movie living in two trees.
        let (elements, _, contents) = db.counts();
        assert_eq!(elements, 4);
        assert_eq!(contents, 3);
        // Structural records: red tree has genre+movie+name, green has
        // award+movie+name => 6.
        assert_eq!(db.structural_count(), 6);
    }

    #[test]
    fn at_most_once_per_colored_tree() {
        let (mut db, red, _, movie, _) = figure2();
        let genre = db.parent(movie, red).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.append_child(genre, movie, red);
        }));
        assert!(r.is_err(), "double attach in one tree must panic");
    }

    #[test]
    fn append_requires_color() {
        let (mut db, red, green, _, name) = figure2();
        let loner = db.new_element("loner", red);
        let _ = green;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.append_child(name, loner, ColorId(1)); // green: loner lacks it
        }));
        assert!(r.is_err());
    }

    #[test]
    fn annotation_codes_are_consistent() {
        let (mut db, red, green, movie, name) = figure2();
        db.annotate(red);
        db.annotate(green);
        db.check_invariants();
        let mr = db.code(movie, red).unwrap();
        let nr = db.code(name, red).unwrap();
        assert!(mr.is_parent_of(&nr));
        let mg = db.code(movie, green).unwrap();
        let ng = db.code(name, green).unwrap();
        assert!(mg.is_parent_of(&ng));
        // Each tree's root hierarchy contains the movie in that tree.
        let genre = db.parent(movie, red).unwrap();
        let award = db.parent(movie, green).unwrap();
        assert!(db.code(genre, red).unwrap().is_parent_of(&mr));
        assert!(db.code(award, green).unwrap().is_parent_of(&mg));
    }

    #[test]
    fn local_order_is_per_color_preorder() {
        let (mut db, red, green, movie, name) = figure2();
        let red_order = db.local_order(red);
        let green_order = db.local_order(green);
        let genre = db.parent(movie, red).unwrap();
        let award = db.parent(movie, green).unwrap();
        assert_eq!(red_order, vec![McNodeId::DOCUMENT, genre, movie, name]);
        assert_eq!(green_order, vec![McNodeId::DOCUMENT, award, movie, name]);
    }

    #[test]
    fn detach_and_reattach_in_one_color() {
        let (mut db, red, green, movie, _) = figure2();
        let genre = db.parent(movie, red).unwrap();
        db.detach(movie, red);
        db.check_invariants();
        assert_eq!(db.parent(movie, red), None);
        assert!(db.colors(movie).contains(red), "detach keeps the color");
        assert!(
            db.parent(movie, green).is_some(),
            "green structure unaffected"
        );
        db.append_child(genre, movie, red);
        db.check_invariants();
        assert_eq!(db.parent(movie, red), Some(genre));
    }

    #[test]
    fn remove_color_drops_subtree_from_one_tree() {
        let (mut db, red, green, movie, name) = figure2();
        db.remove_color(movie, green);
        db.check_invariants();
        assert!(!db.colors(movie).contains(green));
        assert!(!db.colors(name).contains(green), "subtree loses color too");
        assert!(db.colors(movie).contains(red), "red identity survives");
        assert_eq!(db.parent(movie, red).map(|p| db.name_str(p).unwrap().to_string()),
            Some("movie-genre".into()));
        let award = db.child_named(McNodeId::DOCUMENT, "movie-award", green).unwrap();
        assert_eq!(db.children(award, green).count(), 0);
    }

    #[test]
    fn gap_codes_avoid_renumbering() {
        let (mut db, red, _, movie, _) = figure2();
        db.annotate(red);
        let before = db.code(movie, red).unwrap();
        // Append a new red leaf under movie; the gap should absorb it.
        let extra = db.new_element("scene", red);
        db.append_child(movie, extra, red);
        assert!(db.is_dirty(red));
        assert!(db.try_assign_gap_codes(extra, red), "stride leaves room");
        assert!(!db.is_dirty(red));
        let code = db.code(extra, red).unwrap();
        assert!(db.code(movie, red).unwrap().is_parent_of(&code));
        assert_eq!(db.code(movie, red).unwrap(), before, "no renumbering");
        db.check_invariants();
    }

    #[test]
    fn gap_codes_exhaust_eventually() {
        let (mut db, red, _, movie, _) = figure2();
        db.annotate(red);
        let mut fallbacks = 0;
        for i in 0..20 {
            let e = db.new_element(&format!("e{i}"), red);
            db.append_child(movie, e, red);
            if !db.try_assign_gap_codes(e, red) {
                fallbacks += 1;
                db.annotate(red);
            }
        }
        assert!(fallbacks > 0, "a bounded gap must eventually overflow");
        db.check_invariants();
    }

    #[test]
    fn ancestors_walk() {
        let (db, red, _, movie, name) = figure2();
        let anc: Vec<_> = db.ancestors(name, red).collect();
        assert_eq!(anc.len(), 3); // movie, genre, document
        assert_eq!(anc[0], movie);
        assert_eq!(anc[2], McNodeId::DOCUMENT);
    }

    #[test]
    fn attrs_are_color_independent() {
        let (mut db, red, green, movie, _) = figure2();
        db.set_attr(movie, "id", "RG012");
        assert_eq!(db.attr(movie, "id"), Some("RG012"));
        // Same value regardless of which tree we came from.
        let via_red = db.parent(movie, red).map(|_| db.attr(movie, "id"));
        let via_green = db.parent(movie, green).map(|_| db.attr(movie, "id"));
        assert_eq!(via_red, via_green);
        db.set_attr(movie, "id", "RG999");
        assert_eq!(db.attr(movie, "id"), Some("RG999"));
    }

    #[test]
    fn deep_tree_annotation_is_iterative() {
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let mut parent = McNodeId::DOCUMENT;
        for i in 0..5000 {
            let e = db.new_element(&format!("d{}", i % 7), c);
            db.append_child(parent, e, c);
            parent = e;
        }
        db.annotate(c); // must not overflow the stack
        let leaf_code = db.code(parent, c).unwrap();
        assert_eq!(leaf_code.level, 5000);
    }
}
