//! Conversion between plain XML documents and MCT databases.
//!
//! A plain XML document is exactly a single-colored MCT (§3.1: "a
//! single colored tree is just like an XML tree"). Importing brings a
//! parsed [`mct_xml::Document`] in under one color; exporting renders
//! one colored tree back to a document (e.g. for serialization of a
//! query result, or for the shallow/deep baseline databases).

use crate::color::ColorId;
use crate::database::{McNodeId, MctDatabase};
use mct_xml::{Document, NodeId, NodeKind};

/// Import `doc` into `db` under color `c`. Element text is gathered
/// into the element's content record (data-centric: mixed content is
/// concatenated). Returns the imported root elements (children of the
/// document node).
pub fn import_document(db: &mut MctDatabase, doc: &Document, c: ColorId) -> Vec<McNodeId> {
    let mut roots = Vec::new();
    for child in doc.children(NodeId::DOCUMENT) {
        if doc.kind(child) == NodeKind::Element {
            let e = import_element(db, doc, child, c);
            db.append_child(McNodeId::DOCUMENT, e, c);
            roots.push(e);
        }
    }
    roots
}

fn import_element(db: &mut MctDatabase, doc: &Document, el: NodeId, c: ColorId) -> McNodeId {
    let name = doc.name_str(el).expect("element has a name");
    let node = db.new_element(name, c);
    let mut text = String::new();
    for attr in doc.attributes(el) {
        let aname = doc.name_str(attr).unwrap_or("");
        let value = doc.node(attr).value.clone().unwrap_or_default();
        db.set_attr(node, aname, &value);
    }
    for child in doc.children(el) {
        match doc.kind(child) {
            NodeKind::Element => {
                let ce = import_element(db, doc, child, c);
                db.append_child(node, ce, c);
            }
            NodeKind::Text => {
                if let Some(v) = &doc.node(child).value {
                    text.push_str(v);
                }
            }
            _ => {}
        }
    }
    if !text.is_empty() {
        db.set_content(node, &text);
    }
    node
}

/// Export the color-`c` tree rooted at `root` (an element) into a new
/// XML document.
pub fn export_subtree(db: &MctDatabase, root: McNodeId, c: ColorId) -> Document {
    let mut doc = Document::new();
    let e = export_element(db, root, c, &mut doc);
    doc.append_child(NodeId::DOCUMENT, e);
    doc
}

/// Export the entire color-`c` tree (all element children of the
/// document node) into a new XML document wrapped as siblings.
pub fn export_color(db: &MctDatabase, c: ColorId) -> Document {
    let mut doc = Document::new();
    for child in db.children(McNodeId::DOCUMENT, c) {
        let e = export_element(db, child, c, &mut doc);
        doc.append_child(NodeId::DOCUMENT, e);
    }
    doc
}

fn export_element(db: &MctDatabase, n: McNodeId, c: ColorId, doc: &mut Document) -> NodeId {
    let name = db.name_str(n).expect("element has a name").to_string();
    let e = doc.create_element(&name);
    let attrs: Vec<(String, String)> = db
        .node(n)
        .attrs
        .iter()
        .map(|(s, v)| (db.names.resolve(*s).to_string(), v.to_string()))
        .collect();
    for (an, av) in attrs {
        doc.set_attribute(e, &an, &av);
    }
    if let Some(content) = db.content(n) {
        let t = doc.create_text(content);
        doc.append_child(e, t);
    }
    let children: Vec<McNodeId> = db.children(n, c).collect();
    for child in children {
        let ce = export_element(db, child, c, doc);
        doc.append_child(e, ce);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_xml::{parse, write_document, WriteOptions};

    #[test]
    fn import_builds_single_color_tree() {
        let doc = parse(
            r#"<movies><movie year="1950"><name>All About Eve</name></movie><movie><name>Up</name></movie></movies>"#,
        )
        .unwrap();
        let mut db = MctDatabase::new();
        let black = db.add_color("black");
        let roots = import_document(&mut db, &doc, black);
        assert_eq!(roots.len(), 1);
        db.check_invariants();
        let movies = roots[0];
        assert_eq!(db.name_str(movies), Some("movies"));
        let kids: Vec<_> = db.children(movies, black).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(db.attr(kids[0], "year"), Some("1950"));
        let name = db.child_named(kids[0], "name", black).unwrap();
        assert_eq!(db.content(name), Some("All About Eve"));
        assert_eq!(db.string_value(movies, black).unwrap(), "All About EveUp");
    }

    #[test]
    fn roundtrip_import_export() {
        let src = r#"<a x="1"><b>text</b><c><d>deep</d></c></a>"#;
        let doc = parse(src).unwrap();
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        import_document(&mut db, &doc, c);
        let out = export_color(&db, c);
        assert_eq!(write_document(&out, &WriteOptions::default()), src);
    }

    #[test]
    fn export_one_color_of_multicolored_db() {
        let mut db = MctDatabase::new();
        let red = db.add_color("red");
        let green = db.add_color("green");
        let r = db.new_element("red-root", red);
        db.append_child(McNodeId::DOCUMENT, r, red);
        let g = db.new_element("green-root", green);
        db.append_child(McNodeId::DOCUMENT, g, green);
        let shared = db.new_element("shared", red);
        db.set_content(shared, "x");
        db.append_child(r, shared, red);
        db.add_node_color(shared, green);
        db.append_child(g, shared, green);

        let red_doc = export_color(&db, red);
        let green_doc = export_color(&db, green);
        let red_xml = write_document(&red_doc, &WriteOptions::default());
        let green_xml = write_document(&green_doc, &WriteOptions::default());
        assert_eq!(red_xml, "<red-root><shared>x</shared></red-root>");
        assert_eq!(green_xml, "<green-root><shared>x</shared></green-root>");
    }

    #[test]
    fn mixed_content_is_concatenated() {
        let doc = parse("<m>hello <b>brave</b> world</m>").unwrap();
        let mut db = MctDatabase::new();
        let c = db.add_color("black");
        let roots = import_document(&mut db, &doc, c);
        assert_eq!(db.content(roots[0]), Some("hello  world"));
        let b = db.child_named(roots[0], "b", c).unwrap();
        assert_eq!(db.content(b), Some("brave"));
    }
}
