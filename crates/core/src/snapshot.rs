//! Binary catalog snapshot for crash-consistent persistence.
//!
//! [`StoredDb::sync`](crate::persist::StoredDb::sync) serializes the
//! complete logical database plus the physical catalog (heap page
//! lists, B+-tree roots, record-id maps) into one byte blob and hands
//! it to the WAL commit record. Recovery decodes the blob from the
//! last durable commit and reconstructs the `StoredDb` over the
//! replayed page file — no separate superblock or catalog pages, so
//! the catalog is exactly as durable (and exactly as checksummed) as
//! the commit that carries it.
//!
//! The format is a private little-endian encoding, versioned by an
//! 8-byte magic. Malformed bytes decode to
//! [`StorageError::Corrupt`], never a panic.

use crate::color::{ColorSet, Palette};
use crate::database::{ColorTree, Links, McNode, McNodeKind, MctDatabase};
use mct_storage::{IntervalCode, PageId, RecordId, StorageError};
use mct_xml::{Interner, Sym};

/// Format magic; bump the trailing digit on layout changes.
const MAGIC: &[u8; 8] = b"MCTSNAP1";
/// Encoding of `None` for optional u32 fields (node ids, syms).
const NONE32: u32 = u32::MAX;
/// Encoding of `None` for optional packed record ids.
const NONE64: u64 = u64::MAX;

/// Catalog parts of one heap file: `(pages, records, bytes)`.
pub(crate) type HeapParts = (Vec<PageId>, u64, u64);
/// Catalog parts of one B+-tree: `(root, entries, pages)`.
pub(crate) type TreeParts = (PageId, u64, u32);

/// The physical catalog: everything a [`StoredDb`] holds outside the
/// page file itself.
///
/// [`StoredDb`]: crate::persist::StoredDb
pub(crate) struct PhysCatalog {
    pub content_heap: HeapParts,
    pub attr_heap: HeapParts,
    pub struct_heaps: Vec<HeapParts>,
    pub tag_indexes: Vec<TreeParts>,
    pub link_indexes: Vec<TreeParts>,
    pub content_index: TreeParts,
    pub attr_index: TreeParts,
    pub content_rid: Vec<Option<RecordId>>,
    pub attr_rid: Vec<Option<RecordId>>,
}

// ----- encoding ---------------------------------------------------------------

pub(crate) fn encode(db: &MctDatabase, phys: &PhysCatalog) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * 1024);
    out.extend_from_slice(MAGIC);
    // Interner: strings in Sym order (interning order), so decoding
    // re-interns them to identical symbols.
    put_u32(&mut out, db.names.len() as u32);
    for (_, s) in db.names.iter() {
        put_str(&mut out, s);
    }
    // Palette, in ColorId order.
    out.push(db.palette.len() as u8);
    for (_, name) in db.palette.iter() {
        put_str(&mut out, name);
    }
    // Node arena.
    put_u32(&mut out, db.nodes.len() as u32);
    for n in &db.nodes {
        out.push(match n.kind {
            McNodeKind::Document => 0,
            McNodeKind::Element => 1,
        });
        put_u32(&mut out, n.name.map_or(NONE32, |s| s.0));
        match &n.content {
            Some(c) => put_str(&mut out, c),
            None => put_u32(&mut out, NONE32),
        }
        put_u16(&mut out, n.attrs.len() as u16);
        for (s, v) in &n.attrs {
            put_u32(&mut out, s.0);
            put_str(&mut out, v);
        }
        put_u32(&mut out, n.colors.0);
    }
    // Colored trees: links + interval codes, parallel to the arena.
    out.push(db.trees.len() as u8);
    for t in &db.trees {
        put_u64(&mut out, t.node_count);
        out.push(t.dirty as u8);
        put_u32(&mut out, t.links.len() as u32);
        for (l, code) in t.links.iter().zip(&t.codes) {
            put_u32(&mut out, l.parent);
            put_u32(&mut out, l.first_child);
            put_u32(&mut out, l.last_child);
            put_u32(&mut out, l.prev);
            put_u32(&mut out, l.next);
            out.push(l.attached as u8);
            out.extend_from_slice(&code.to_bytes());
        }
    }
    // Physical catalog.
    put_heap(&mut out, &phys.content_heap);
    put_heap(&mut out, &phys.attr_heap);
    out.push(phys.struct_heaps.len() as u8);
    for h in &phys.struct_heaps {
        put_heap(&mut out, h);
    }
    out.push(phys.tag_indexes.len() as u8);
    for t in &phys.tag_indexes {
        put_tree(&mut out, t);
    }
    out.push(phys.link_indexes.len() as u8);
    for t in &phys.link_indexes {
        put_tree(&mut out, t);
    }
    put_tree(&mut out, &phys.content_index);
    put_tree(&mut out, &phys.attr_index);
    put_rids(&mut out, &phys.content_rid);
    put_rids(&mut out, &phys.attr_rid);
    out
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_heap(out: &mut Vec<u8>, (pages, records, bytes): &HeapParts) {
    put_u32(out, pages.len() as u32);
    for p in pages {
        put_u32(out, p.0);
    }
    put_u64(out, *records);
    put_u64(out, *bytes);
}

fn put_tree(out: &mut Vec<u8>, (root, entries, pages): &TreeParts) {
    put_u32(out, root.0);
    put_u64(out, *entries);
    put_u32(out, *pages);
}

fn put_rids(out: &mut Vec<u8>, rids: &[Option<RecordId>]) {
    put_u32(out, rids.len() as u32);
    for r in rids {
        let packed = r.map_or(NONE64, |rid| {
            (u64::from(rid.page.0) << 16) | u64::from(rid.slot)
        });
        put_u64(out, packed);
    }
}

// ----- decoding ---------------------------------------------------------------

pub(crate) fn decode(bytes: &[u8]) -> mct_storage::Result<(MctDatabase, PhysCatalog)> {
    let mut r = Reader { b: bytes, at: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let mut names = Interner::new();
    let nstrings = r.u32()?;
    for i in 0..nstrings {
        let s = r.str()?;
        if names.intern(s) != Sym(i) {
            return Err(corrupt("duplicate interner string"));
        }
    }
    let mut palette = Palette::new();
    let ncolors = r.u8()? as usize;
    if ncolors > 32 {
        return Err(corrupt("palette beyond 32-color limit"));
    }
    for _ in 0..ncolors {
        let name = r.str()?.to_string();
        palette.register(&name);
    }
    if palette.len() != ncolors {
        return Err(corrupt("duplicate palette color"));
    }
    let nnodes = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(nnodes.min(1 << 20));
    for _ in 0..nnodes {
        let kind = match r.u8()? {
            0 => McNodeKind::Document,
            1 => McNodeKind::Element,
            _ => return Err(corrupt("bad node kind")),
        };
        let name = match r.u32()? {
            NONE32 => None,
            s if s < nstrings => Some(Sym(s)),
            _ => return Err(corrupt("node name out of range")),
        };
        let content = {
            let len = r.u32()?;
            if len == NONE32 {
                None
            } else {
                Some(r.str_of(len as usize)?.into())
            }
        };
        let nattrs = r.u16()? as usize;
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            let s = r.u32()?;
            if s >= nstrings {
                return Err(corrupt("attr name out of range"));
            }
            attrs.push((Sym(s), r.str()?.into()));
        }
        let colors = ColorSet(r.u32()?);
        nodes.push(McNode {
            kind,
            name,
            content,
            attrs,
            colors,
        });
    }
    let ntrees = r.u8()? as usize;
    if ntrees != ncolors {
        return Err(corrupt("tree count != color count"));
    }
    let mut trees = Vec::with_capacity(ntrees);
    for _ in 0..ntrees {
        let node_count = r.u64()?;
        let dirty = r.u8()? != 0;
        let len = r.u32()? as usize;
        if len > nnodes {
            return Err(corrupt("tree longer than arena"));
        }
        let mut links = Vec::with_capacity(len);
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            links.push(Links {
                parent: r.u32()?,
                first_child: r.u32()?,
                last_child: r.u32()?,
                prev: r.u32()?,
                next: r.u32()?,
                attached: r.u8()? != 0,
            });
            codes.push(IntervalCode::from_bytes(r.take(IntervalCode::BYTES)?));
        }
        trees.push(ColorTree {
            links,
            codes,
            node_count,
            dirty,
        });
    }
    let db = MctDatabase {
        nodes,
        names,
        palette,
        trees,
    };
    let content_heap = read_heap(&mut r)?;
    let attr_heap = read_heap(&mut r)?;
    let nheaps = r.u8()? as usize;
    if nheaps != ncolors {
        return Err(corrupt("struct heap count != color count"));
    }
    let mut struct_heaps = Vec::with_capacity(nheaps);
    for _ in 0..nheaps {
        struct_heaps.push(read_heap(&mut r)?);
    }
    let ntags = r.u8()? as usize;
    if ntags != ncolors {
        return Err(corrupt("tag index count != color count"));
    }
    let mut tag_indexes = Vec::with_capacity(ntags);
    for _ in 0..ntags {
        tag_indexes.push(read_tree(&mut r)?);
    }
    let nlinks = r.u8()? as usize;
    if nlinks != ncolors {
        return Err(corrupt("link index count != color count"));
    }
    let mut link_indexes = Vec::with_capacity(nlinks);
    for _ in 0..nlinks {
        link_indexes.push(read_tree(&mut r)?);
    }
    let content_index = read_tree(&mut r)?;
    let attr_index = read_tree(&mut r)?;
    let content_rid = read_rids(&mut r)?;
    let attr_rid = read_rids(&mut r)?;
    if r.at != r.b.len() {
        return Err(corrupt("trailing bytes after snapshot"));
    }
    Ok((
        db,
        PhysCatalog {
            content_heap,
            attr_heap,
            struct_heaps,
            tag_indexes,
            link_indexes,
            content_index,
            attr_index,
            content_rid,
            attr_rid,
        },
    ))
}

fn corrupt(what: &'static str) -> StorageError {
    StorageError::Corrupt(what)
}

struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> mct_storage::Result<&'a [u8]> {
        if self.b.len() - self.at < n {
            return Err(corrupt("snapshot truncated"));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> mct_storage::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> mct_storage::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> mct_storage::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> mct_storage::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str_of(&mut self, len: usize) -> mct_storage::Result<&'a str> {
        std::str::from_utf8(self.take(len)?).map_err(|_| corrupt("snapshot string not UTF-8"))
    }

    fn str(&mut self) -> mct_storage::Result<&'a str> {
        let len = self.u32()? as usize;
        self.str_of(len)
    }
}

fn read_heap(r: &mut Reader<'_>) -> mct_storage::Result<HeapParts> {
    let npages = r.u32()? as usize;
    let mut pages = Vec::with_capacity(npages.min(1 << 20));
    for _ in 0..npages {
        pages.push(PageId(r.u32()?));
    }
    Ok((pages, r.u64()?, r.u64()?))
}

fn read_tree(r: &mut Reader<'_>) -> mct_storage::Result<TreeParts> {
    Ok((PageId(r.u32()?), r.u64()?, r.u32()?))
}

fn read_rids(r: &mut Reader<'_>) -> mct_storage::Result<Vec<Option<RecordId>>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let packed = r.u64()?;
        out.push(if packed == NONE64 {
            None
        } else {
            Some(RecordId {
                page: PageId((packed >> 16) as u32),
                slot: (packed & 0xFFFF) as u16,
            })
        });
    }
    Ok(out)
}
