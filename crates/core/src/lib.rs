//! # mct-core — the multi-colored tree data model
//!
//! The paper's primary contribution (§3, §6): an evolutionary extension
//! of the XML data model in which every node carries a set of *colors*
//! and the database maintains one rooted ordered tree per color over
//! the shared node set. One logical node — one stored copy of its
//! content and attributes — can be hierarchically related to different
//! nodes in different colored trees, replacing value-based joins with
//! structural navigation.
//!
//! * [`color`] — [`ColorId`], [`ColorSet`] (bitmask), [`Palette`].
//! * [`database`] — [`MctDatabase`]: the arena, the per-color trees,
//!   the color-aware accessors of §3.2 (`parent`, `children`,
//!   `string-value`, `typed-value`, `colors`), the first-/next-color
//!   constructors of §3.3, gapped interval annotation and per-color
//!   local order.
//! * [`xmlbridge`] — plain XML ⇄ single-colored MCT conversion.
//! * [`persist`] — [`StoredDb`]: the Timber-style physical layout of
//!   §6.2 / Figure 10 over `mct-storage` (structural node per color,
//!   link indexes, tag/content/attribute indexes, buffer pool).
//! * [`crosstree`] — the cross-tree join access method for color
//!   transitions, plus the direct-link ablation variant.

pub mod check;
pub mod color;
pub mod crosstree;
pub mod database;
pub mod persist;
mod snapshot;
pub mod xmlbridge;

pub use check::{CheckReport, Violation};
pub use color::{ColorId, ColorSet, Palette};
pub use crosstree::{cross_tree_join, cross_tree_join_direct};
pub use database::{McNode, McNodeId, McNodeKind, MctDatabase, CODE_STRIDE};
pub use persist::{StoredDb, StructRef, Txn};
pub use xmlbridge::{export_color, export_subtree, import_document};
